package toorjah

import (
	"context"
	"strconv"
	"strings"
	"testing"
	"time"
)

func musicSystem(t *testing.T) *System {
	t.Helper()
	sch, err := ParseSchema(`
r1^ioo(Artist, Nation, Year)
r2^oio(Title, Year, Artist)
r3^oo(Artist, Album)
`)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(sch)
	for _, bind := range []struct {
		rel  string
		rows []Row
	}{
		{"r1", []Row{{"modugno", "italy", "1928"}, {"madonna", "usa", "1958"}}},
		{"r2", []Row{{"volare", "1958", "modugno"}, {"vogue", "1990", "madonna"}}},
		{"r3", []Row{{"madonna", "like_a_virgin"}}},
	} {
		if err := sys.BindRows(bind.rel, bind.rows...); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}

func TestSystemEndToEnd(t *testing.T) {
	sys := musicSystem(t)
	q, err := sys.Prepare("q(N) :- r1(A, N, Y1), r2(volare, Y2, A)")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Answerable() {
		t.Fatal("answerable")
	}
	res, err := q.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(res.SortedAnswers(), ";"); got != "italy" {
		t.Errorf("answers = %s", got)
	}
	naive, err := q.ExecuteNaive()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(naive.SortedAnswers(), ";") != "italy" {
		t.Errorf("naive answers = %v", naive.SortedAnswers())
	}
	if res.TotalAccesses() > naive.TotalAccesses() {
		t.Errorf("optimized %d > naive %d accesses", res.TotalAccesses(), naive.TotalAccesses())
	}
	var streamed int
	piped, err := q.Stream(PipeOptions{}, func(Tuple) { streamed++ })
	if err != nil {
		t.Fatal(err)
	}
	if streamed != 1 || piped.Answers.Len() != 1 {
		t.Errorf("streamed=%d, answers=%d", streamed, piped.Answers.Len())
	}
}

func TestSystemPlanIntrospection(t *testing.T) {
	sys := musicSystem(t)
	q, err := sys.Prepare("q(N) :- r1(A, N, Y1), r2(volare, Y2, A)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Plan() == nil {
		t.Fatal("no plan")
	}
	rel := strings.Join(q.RelevantRelations(), ",")
	if !strings.Contains(rel, "r3") {
		t.Errorf("r3 should be relevant: %s", rel)
	}
	dot := q.DGraphDOT()
	if !strings.Contains(dot, "digraph") {
		t.Error("DGraphDOT output malformed")
	}
	if !strings.Contains(q.OptimizedDOT(), "digraph") {
		t.Error("OptimizedDOT output malformed")
	}
}

func TestSystemNonAnswerable(t *testing.T) {
	sch, _ := ParseSchema(`
r1^io(A, C)
r2^oo(B, C)
`)
	sys := NewSystem(sch)
	q, err := sys.Prepare("q(C) :- r1(X, C)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Answerable() {
		t.Error("nothing provides domain A: not answerable")
	}
	res, err := q.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers.Len() != 0 || res.TotalAccesses() != 0 {
		t.Errorf("non-answerable: %v", res)
	}
	naive, err := q.ExecuteNaive()
	if err != nil {
		t.Fatal(err)
	}
	if naive.Answers.Len() != 0 {
		t.Error("naive on non-answerable query must be empty")
	}
	if _, err := q.Stream(PipeOptions{}, nil); err != nil {
		t.Errorf("Stream on non-answerable: %v", err)
	}
}

func TestSystemUnboundRelationsDefaultEmpty(t *testing.T) {
	sch, _ := ParseSchema(`
r1^oo(A, B)
r2^io(B, C)
`)
	sys := NewSystem(sch)
	if err := sys.BindRows("r1", Row{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	// r2 never bound: Prepare auto-binds an empty source.
	q, err := sys.Prepare("q(C) :- r1(X, Y), r2(Y, C)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers.Len() != 0 {
		t.Errorf("answers = %v", res.SortedAnswers())
	}
}

func TestBindErrors(t *testing.T) {
	sch, _ := ParseSchema("r^oo(A, B)")
	sys := NewSystem(sch)
	if err := sys.BindRows("nope", Row{"x", "y"}); err == nil {
		t.Error("unknown relation: want error")
	}
}

func TestSystemLatency(t *testing.T) {
	sys := musicSystem(t)
	sys.Latency = 2 * time.Millisecond
	// Rebind with latency applied.
	if err := sys.BindRows("r3", Row{"madonna", "like_a_virgin"}); err != nil {
		t.Fatal(err)
	}
	q, err := sys.Prepare("q(AL) :- r3(A, AL)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed < 2*time.Millisecond {
		t.Errorf("latency not applied: %v", res.Elapsed)
	}
}

func TestUCQEndToEnd(t *testing.T) {
	sch, _ := ParseSchema(`
pub1^io(Paper, Person)
pub2^oo(Paper, Person)
conf^ooo(Paper, ConfName, Year)
`)
	sys := NewSystem(sch)
	must(t, sys.BindRows("pub1", Row{"p1", "alice"}, Row{"p2", "bob"}))
	must(t, sys.BindRows("pub2", Row{"p1", "alice"}, Row{"p3", "carol"}))
	must(t, sys.BindRows("conf", Row{"p1", "icde", "2008"}, Row{"p2", "vldb", "2007"}, Row{"p3", "icde", "2008"}))
	u, err := sys.PrepareUCQ(`
q(X) :- pub1(P, X), conf(P, icde, Y)
q(X) :- pub2(P, X), conf(P, icde, Y)
`)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Answerable() || len(u.Disjuncts()) != 2 {
		t.Fatal("UCQ preparation broken")
	}
	res, err := u.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(res.SortedAnswers(), ";"); got != "alice;carol" {
		t.Errorf("UCQ answers = %s, want alice;carol", got)
	}
	if res.TotalAccesses() == 0 {
		t.Error("no accesses recorded")
	}
}

func TestUCQErrors(t *testing.T) {
	sch, _ := ParseSchema("r^oo(A, B)")
	sys := NewSystem(sch)
	if _, err := sys.PrepareUCQ("q(X) :- r(X, Y)\nq(X, Y) :- r(X, Y)"); err == nil {
		t.Error("mismatched arity: want error")
	}
	if _, err := sys.PrepareUCQ("q(X) :- nosuch(X)"); err == nil {
		t.Error("unknown relation: want error")
	}
}

func TestExecuteOptsAblation(t *testing.T) {
	sys := musicSystem(t)
	q, err := sys.Prepare("q(N) :- r1(A, N, Y1), r2(volare, Y2, A)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.ExecuteOpts(Options{NoMetaCache: true, NoEarlyFailure: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(res.SortedAnswers(), ";"); got != "italy" {
		t.Errorf("ablation answers = %s", got)
	}
}

// cachedMusicSystem is musicSystem over a System with a cross-query cache.
func cachedMusicSystem(t *testing.T, opts ...SystemOption) *System {
	t.Helper()
	sch, err := ParseSchema(`
r1^ioo(Artist, Nation, Year)
r2^oio(Title, Year, Artist)
r3^oo(Artist, Album)
`)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(sch, opts...)
	must(t, sys.BindRows("r1", Row{"modugno", "italy", "1928"}, Row{"madonna", "usa", "1958"}))
	must(t, sys.BindRows("r2", Row{"volare", "1958", "modugno"}, Row{"vogue", "1990", "madonna"}))
	must(t, sys.BindRows("r3", Row{"madonna", "like_a_virgin"}))
	return sys
}

// TestCachedSystemSecondRunNoProbes is the cross-query cache acceptance
// property: the second execution of the same query probes no source at all,
// for the fast-failing, streaming and naive strategies alike.
func TestCachedSystemSecondRunNoProbes(t *testing.T) {
	sys := cachedMusicSystem(t, WithCache(CacheOptions{}))
	q, err := sys.Prepare("q(N) :- r1(A, N, Y1), r2(volare, Y2, A)")
	if err != nil {
		t.Fatal(err)
	}
	res1, err := q.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res1.TotalAccesses() == 0 {
		t.Fatal("cold run made no accesses")
	}
	res2, err := q.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := res2.TotalAccesses(); got != 0 {
		t.Errorf("warm run made %d source probes, want 0", got)
	}
	if strings.Join(res2.SortedAnswers(), ";") != "italy" {
		t.Errorf("warm answers = %v", res2.SortedAnswers())
	}
	piped, err := q.Stream(PipeOptions{Parallelism: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := piped.TotalAccesses(); got != 0 {
		t.Errorf("warm pipelined run made %d source probes, want 0", got)
	}
	if strings.Join(piped.SortedAnswers(), ";") != "italy" {
		t.Errorf("warm pipelined answers = %v", piped.SortedAnswers())
	}
	// Naive strategy through a fresh cached system (the cache above is
	// already warm for this query's whole access set).
	nsys := cachedMusicSystem(t, WithCache(CacheOptions{}))
	nq, err := nsys.Prepare("q(N) :- r1(A, N, Y1), r2(volare, Y2, A)")
	if err != nil {
		t.Fatal(err)
	}
	naive1, err := nq.ExecuteNaive()
	if err != nil {
		t.Fatal(err)
	}
	naive2, err := nq.ExecuteNaive()
	if err != nil {
		t.Fatal(err)
	}
	if naive1.TotalAccesses() == 0 || naive2.TotalAccesses() != 0 {
		t.Errorf("naive accesses cold=%d warm=%d, want >0 and 0",
			naive1.TotalAccesses(), naive2.TotalAccesses())
	}
	c := sys.AccessCache()
	if c == nil {
		t.Fatal("AccessCache() = nil")
	}
	if tot := c.Totals(); tot.Hits == 0 || tot.Misses == 0 {
		t.Errorf("cache totals = %+v, want hits and misses", tot)
	}
}

// TestCachedSystemRebindInvalidates: rebinding a relation drops its cached
// accesses, so the next run probes it again and sees the new data.
func TestCachedSystemRebindInvalidates(t *testing.T) {
	sys := cachedMusicSystem(t, WithCache(CacheOptions{}))
	q, err := sys.Prepare("q(AL) :- r3(A, AL)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	must(t, sys.BindRows("r3", Row{"madonna", "like_a_prayer"}))
	res, err := q.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAccesses() == 0 {
		t.Error("rebinding did not invalidate the cache")
	}
	if got := strings.Join(res.SortedAnswers(), ";"); got != "like_a_prayer" {
		t.Errorf("answers = %s, want like_a_prayer", got)
	}
}

// TestSharedCacheRequiresExplicitBinding: a system sharing a cache must not
// auto-bind empty sources — their negative entries would poison the cache
// for the other systems — so Prepare errors instead.
func TestSharedCacheRequiresExplicitBinding(t *testing.T) {
	c := NewAccessCache(CacheOptions{})
	sysA := cachedMusicSystem(t, WithSharedCache(c))
	qA, err := sysA.Prepare("q(AL) :- r3(A, AL)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := qA.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}

	// sysB shares the cache but never binds its relations.
	sch, _ := ParseSchema(`
r1^ioo(Artist, Nation, Year)
r2^oio(Title, Year, Artist)
r3^oo(Artist, Album)
`)
	sysB := NewSystem(sch, WithSharedCache(c))
	if _, err := sysB.Prepare("q(AL) :- r3(A, AL)"); err == nil {
		t.Fatal("Prepare on a shared-cache system with unbound relations must error")
	}

	// sysA's cached answers are intact.
	res, err := qA.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(res.SortedAnswers(), ";"); got != "like_a_virgin" {
		t.Errorf("sysA answers after sysB = %q, want like_a_virgin", got)
	}
	if res.TotalAccesses() != 0 {
		t.Errorf("sysA warm run probed %d times", res.TotalAccesses())
	}
}

// TestSharedCacheAcrossSystems: two systems over the same sources sharing
// one cache — the second system's first run is already warm.
func TestSharedCacheAcrossSystems(t *testing.T) {
	c := NewAccessCache(CacheOptions{})
	sysA := cachedMusicSystem(t, WithSharedCache(c))
	sysB := cachedMusicSystem(t, WithSharedCache(c))
	qA, err := sysA.Prepare("q(N) :- r1(A, N, Y1), r2(volare, Y2, A)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := qA.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	qB, err := sysB.Prepare("q(N) :- r1(A, N, Y1), r2(volare, Y2, A)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := qB.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.TotalAccesses(); got != 0 {
		t.Errorf("second system probed %d times, want 0 (shared cache)", got)
	}
	if strings.Join(res.SortedAnswers(), ";") != "italy" {
		t.Errorf("answers = %v", res.SortedAnswers())
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestWithProbeMetrics(t *testing.T) {
	reg := NewMetricsRegistry()
	sch, _ := ParseSchema(`
r1^ioo(Artist, Nation, Year)
r2^oio(Title, Year, Artist)
r3^oo(Artist, Album)
`)
	sys := NewSystem(sch,
		WithProbeMetrics(NewProbeMetricsHandles(reg)),
		WithCache(CacheOptions{}))
	must(t, sys.BindRows("r3", Row{"madonna", "like_a_virgin"}))
	q, err := sys.Prepare("q(A) :- r3(X, A)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAccesses() == 0 {
		t.Fatal("expected at least one access")
	}
	var out strings.Builder
	if err := reg.WriteText(&out); err != nil {
		t.Fatal(err)
	}
	want := `toorjah_source_accesses_total{relation="r3"} ` +
		strconv.Itoa(res.TotalAccesses())
	if !strings.Contains(out.String(), want) {
		t.Fatalf("metrics missing %q:\n%s", want, out.String())
	}
	// A cache-warm repeat must not advance the probed-access counter.
	if _, err := q.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := reg.WriteText(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), want) {
		t.Fatalf("cache-warm repeat moved the probe counter, want still %q:\n%s", want, out.String())
	}
}
