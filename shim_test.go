package toorjah

import (
	"context"
	"strings"
	"testing"
)

// TestDeprecatedShimEquivalence pins the deprecated execution entry points
// to the context-first Execute they now delegate to: same answers, same
// access counts, same callback behavior — so callers can migrate (or not)
// without any observable change.
func TestDeprecatedShimEquivalence(t *testing.T) {
	sys := musicSystem(t)
	ctx := context.Background()

	q, err := sys.Prepare("q(N) :- r1(A, N, Y1), r2(volare, Y2, A)")
	if err != nil {
		t.Fatal(err)
	}
	u, err := sys.PrepareUCQ("q(N) :- r1(A, N, Y1), r2(volare, Y2, A)\nq(B) :- r3(madonna, B)")
	if err != nil {
		t.Fatal(err)
	}

	opts := Options{MaxBatch: -1, NoMetaCache: true}
	pairs := []struct {
		name       string
		deprecated func() (*Result, error)
		current    func() (*Result, error)
	}{
		{"cq/ExecuteOpts",
			func() (*Result, error) { return q.ExecuteOpts(opts) },
			func() (*Result, error) { return q.Execute(ctx, WithExecOptions(opts)) }},
		{"cq/ExecuteNaive",
			func() (*Result, error) { return q.ExecuteNaive() },
			func() (*Result, error) { return q.Execute(ctx, WithExecutor(ExecutorNaive)) }},
		{"cq/ExecuteNaiveOpts",
			func() (*Result, error) { return q.ExecuteNaiveOpts(opts) },
			func() (*Result, error) {
				return q.Execute(ctx, WithExecutor(ExecutorNaive), WithExecOptions(opts))
			}},
		{"ucq/ExecuteOpts",
			func() (*Result, error) { return u.ExecuteOpts(opts) },
			func() (*Result, error) { return u.Execute(ctx, WithExecOptions(opts)) }},
		{"ucq/ExecuteNaive",
			func() (*Result, error) { return u.ExecuteNaive() },
			func() (*Result, error) { return u.Execute(ctx, WithExecutor(ExecutorNaive)) }},
		{"ucq/ExecuteNaiveOpts",
			func() (*Result, error) { return u.ExecuteNaiveOpts(opts) },
			func() (*Result, error) {
				return u.Execute(ctx, WithExecutor(ExecutorNaive), WithExecOptions(opts))
			}},
	}
	for _, p := range pairs {
		old, err := p.deprecated()
		if err != nil {
			t.Fatalf("%s: deprecated: %v", p.name, err)
		}
		cur, err := p.current()
		if err != nil {
			t.Fatalf("%s: current: %v", p.name, err)
		}
		oldA := strings.Join(old.SortedAnswers(), ";")
		curA := strings.Join(cur.SortedAnswers(), ";")
		if oldA != curA {
			t.Errorf("%s: answers diverge: deprecated [%s], current [%s]", p.name, oldA, curA)
		}
		if old.TotalAccesses() != cur.TotalAccesses() {
			t.Errorf("%s: accesses diverge: deprecated %d, current %d",
				p.name, old.TotalAccesses(), cur.TotalAccesses())
		}
	}

	// Stream shims: same answers, and the callback fires once per distinct
	// answer on both sides.
	var oldCalls, curCalls int
	oldS, err := q.Stream(PipeOptions{Parallelism: 2, Options: Options{MaxBatch: -1}},
		func(Tuple) { oldCalls++ })
	if err != nil {
		t.Fatal(err)
	}
	curS, err := q.Execute(ctx,
		WithExecOptions(Options{Parallelism: 2, MaxBatch: -1}),
		OnAnswer(func(Tuple) { curCalls++ }))
	if err != nil {
		t.Fatal(err)
	}
	if a, b := strings.Join(oldS.SortedAnswers(), ";"), strings.Join(curS.SortedAnswers(), ";"); a != b {
		t.Errorf("cq/Stream answers diverge: deprecated [%s], current [%s]", a, b)
	}
	if oldCalls != oldS.Answers.Len() || curCalls != curS.Answers.Len() {
		t.Errorf("callback counts: deprecated %d/%d answers, current %d/%d answers",
			oldCalls, oldS.Answers.Len(), curCalls, curS.Answers.Len())
	}

	oldCalls, curCalls = 0, 0
	oldU, err := u.Stream(PipeOptions{}, func(Tuple) { oldCalls++ })
	if err != nil {
		t.Fatal(err)
	}
	curU, err := u.Execute(ctx, OnAnswer(func(Tuple) { curCalls++ }))
	if err != nil {
		t.Fatal(err)
	}
	if a, b := strings.Join(oldU.SortedAnswers(), ";"), strings.Join(curU.SortedAnswers(), ";"); a != b {
		t.Errorf("ucq/Stream answers diverge: deprecated [%s], current [%s]", a, b)
	}
	if oldCalls != oldU.Answers.Len() || curCalls != curU.Answers.Len() {
		t.Errorf("union callback counts: deprecated %d/%d answers, current %d/%d answers",
			oldCalls, oldU.Answers.Len(), curCalls, curU.Answers.Len())
	}

	// PipeOptions outer fields must flatten into the unified Options: a
	// Limit set on the deprecated struct truncates exactly like WithLimit.
	oldL, err := u.Stream(PipeOptions{Limit: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	curL, err := u.Execute(ctx, WithLimit(1), OnAnswer(func(Tuple) {}))
	if err != nil {
		t.Fatal(err)
	}
	if oldL.Answers.Len() != 1 || curL.Answers.Len() != 1 {
		t.Errorf("limit shim: deprecated %d answers, current %d answers (want 1 each)",
			oldL.Answers.Len(), curL.Answers.Len())
	}
	if !oldL.Truncated || !curL.Truncated {
		t.Errorf("limit shim: truncated flags deprecated=%v current=%v (want true)",
			oldL.Truncated, curL.Truncated)
	}
}
