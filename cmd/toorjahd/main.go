// Command toorjahd is the long-running Toorjah query service: it loads a
// schema and CSV-backed sources once, keeps prepared query plans warm, and
// serves concurrent conjunctive queries over HTTP, streaming answers as
// NDJSON the moment the pipelined engine derives them. All requests share
// one cross-query access cache (internal/cache), so the dominant cost of
// the paper — accesses to limited sources — is paid at most once per
// distinct access across the whole service lifetime.
//
//	toorjahd -schema schema.txt -data datadir -addr :8344
//
// The schema file uses the paper's notation, one relation per line
// ("rev^ooi(Person, ConfName, Year)"); datadir holds one CSV file per
// relation (rev.csv, …; missing files are empty sources). Endpoints:
//
//	GET  /query?q=<CQ>[&limit=N]   stream answers as NDJSON, then a summary
//	POST /query                    same, query text in the request body
//	                               (bodies beyond 1 MiB are rejected with 413)
//	POST /ingest?relation=R[&op=]  apply one batch of live mutations (NDJSON
//	                               rows; op insert or delete; size-capped)
//	GET  /stats                    cache + service + data-freshness statistics
//	GET  /schema                   the loaded schema (+ per-relation epochs)
//	GET  /healthz                  liveness probe
//	GET  /metrics                  Prometheus text exposition of the service:
//	                               query latency histograms per executor,
//	                               per-relation source accesses/round trips,
//	                               cache hits/misses/evictions/coalesces,
//	                               remote retries/breaker state/epochs,
//	                               ingest batches, probe batch sizes
//
// A query text with several non-comment lines is a union of conjunctive
// queries (UCQ), one disjunct per line sharing the head predicate and
// arity: the disjuncts execute concurrently over the shared access cache
// and the deduplicated union answers stream as NDJSON the moment the first
// disjunct derives them; the summary line carries the merged access
// statistics and the disjunct count, and /stats reports how many served
// queries were unions (ucqs_served).
//
// Relations are live: POST /ingest?relation=rev streams NDJSON rows (one
// JSON string array per line) into the relation as a single batch — one
// epoch advance — with op=delete removing rows instead. Queries in flight
// keep the consistent version they started with; queries arriving after
// the ingest response see the new rows, including through the shared
// access cache (entries are keyed by data epoch). /stats reports each
// relation's epoch, live row count and last-ingest time under "data".
//
// A node is also a federation peer: POST /probe serves batched
// binding-pattern probes of its relations to other toorjahd/toorjah nodes
// (behind the shared access cache, so repeat federated probes cost no local
// access), and -remote attaches relations served by other nodes as this
// node's own sources — a deployment shards its relations across machines
// and every node answers queries over the union. GET /healthz?ready is the
// readiness view, reporting the reachability of the attached peers within
// -ready-timeout; /stats reports probes served (probes_served, probes) and
// per-peer outbound telemetry (remote_peers: round trips, retries, breaker
// opens, latency).
//
// Every query is observable end to end: a random trace ID names it in the
// structured query log (one slog line per query with latency, access counts
// and cache-hit ratio; at or above -slow-query the line is a warning with
// slow=true) and rides the X-Toorjah-Trace header to probed peers, so a
// federated query stitches across every node's log. ?trace=1 on /query
// additionally returns the full span tree — query → disjunct/pipeline →
// probe → remote round trip — inside the NDJSON summary frame. -debug-addr
// starts a second, private listener serving net/http/pprof (never mounted
// on the public mux).
//
// With -data-dir the node is durable: every applied /ingest batch appends
// one checksummed record to a write-ahead log under that directory before
// the batch is acknowledged (-fsync picks the flush policy: always syncs
// inside the acknowledgement path, interval flushes on -fsync-interval,
// never leaves flushing to the OS), snapshot files of every relation's
// live rows are written every -snapshot-interval, and sealed WAL segments
// rotate by -wal-segment-bytes/-wal-segment-age into an archive
// subdirectory. On restart the node recovers the latest valid snapshot,
// replays the WAL tail (truncating a torn final record rather than
// refusing to start), and serves the same rows and epochs it had
// acknowledged — the CSV seed in -data is read only on the very first
// boot. /stats gains a "wal" block and /metrics the toorjah_wal_*
// families (appends, bytes, syncs, snapshots, recovery duration).
//
// The process drains gracefully: SIGINT/SIGTERM stop accepting connections
// and in-flight query streams get up to 15s to finish; a durable node then
// flushes and closes its WAL.
//
// Flags:
//
//	-addr                listen address (default :8344)
//	-latency             simulated per-access source latency (e.g. 50ms)
//	-parallelism         concurrent probes per relation (default 4)
//	-queue               per-relation access queue length (default 32)
//	-max-batch           access bindings per source round trip (default 16;
//	                     negative = unbatched)
//	-no-cache            disable the cross-query access cache
//	-cache-capacity      max cached accesses, LRU-bounded (default 65536)
//	-cache-ttl           expiry of cached accesses (default: never)
//	-cache-negative-ttl  expiry of cached empty accesses (default: cache-ttl)
//	-no-negative         do not cache empty accesses
//	-max-ingest-bytes    cap on one /ingest request body (default 8 MiB)
//	-data-dir            durable state directory: write-ahead log + epoch
//	                     snapshots + archive (default: memory only)
//	-fsync               WAL flush policy: always, interval or never
//	                     (default always)
//	-fsync-interval      flush period under -fsync interval (default 100ms)
//	-snapshot-interval   how often to snapshot relations and archive sealed
//	                     WAL segments (default 5m; 0 disables)
//	-wal-segment-bytes   size at which the active WAL segment seals
//	                     (default 64 MiB)
//	-wal-segment-age     age at which a non-empty active segment seals
//	                     (default: size-only)
//	-adaptive-ordering   feed live per-relation row counts from pinned
//	                     snapshots into plan ordering (smaller relations
//	                     probed earlier; replans when epochs advance)
//	-remote              attach a federation peer: http://host:8344=R1,R2
//	                     (bare address = every shared relation this node
//	                     holds no data for; repeatable)
//	-remote-timeout      per-probe-attempt timeout against peers (default 10s)
//	-ready-timeout       peer reachability timeout of /healthz?ready
//	                     (default 2s)
//	-slow-query          latency at or above which a query logs as slow
//	                     (default 1s; 0 disables the threshold)
//	-debug-addr          private pprof listen address (default: disabled)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"toorjah"
	"toorjah/internal/obs"
	"toorjah/internal/schema"
	"toorjah/internal/service"
	"toorjah/internal/storage"
	"toorjah/internal/wal"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	schemaFile := flag.String("schema", "", "schema file (required)")
	dataDir := flag.String("data", "", "directory of per-relation CSV files (required)")
	addr := flag.String("addr", ":8344", "listen address")
	latency := flag.Duration("latency", 0, "simulated per-access latency")
	parallelism := flag.Int("parallelism", 4, "concurrent probes per relation")
	queueLen := flag.Int("queue", 32, "per-relation access queue length")
	maxBatch := flag.Int("max-batch", 0, "access bindings per source round trip (0 = default 16, negative = unbatched)")
	noCache := flag.Bool("no-cache", false, "disable the cross-query access cache")
	cacheCap := flag.Int("cache-capacity", 0, "max cached accesses (0 = default 65536, negative = unbounded)")
	cacheTTL := flag.Duration("cache-ttl", 0, "expiry of cached accesses (0 = never)")
	cacheNegTTL := flag.Duration("cache-negative-ttl", 0, "expiry of cached empty accesses (0 = same as cache-ttl)")
	noNegative := flag.Bool("no-negative", false, "do not cache empty accesses")
	maxIngest := flag.Int64("max-ingest-bytes", service.DefaultMaxIngestBytes, "cap on one /ingest request body")
	adaptive := flag.Bool("adaptive-ordering", false, "feed live per-relation row counts into plan ordering")
	walDir := flag.String("data-dir", "", "durable state directory (WAL + snapshots; empty = memory only)")
	fsync := flag.String("fsync", wal.FsyncAlways, "WAL flush policy: always, interval or never")
	fsyncInterval := flag.Duration("fsync-interval", 0, "flush period under -fsync interval (0 = default 100ms)")
	snapInterval := flag.Duration("snapshot-interval", 5*time.Minute, "snapshot + archive period (0 = disabled)")
	segBytes := flag.Int64("wal-segment-bytes", 0, "active WAL segment size cap (0 = default 64 MiB)")
	segAge := flag.Duration("wal-segment-age", 0, "active WAL segment age cap (0 = size-only)")
	var remotes multiFlag
	flag.Var(&remotes, "remote", "federation peer to attach, host[:port][=R1,R2] (repeatable)")
	remoteTimeout := flag.Duration("remote-timeout", 0, "per-probe-attempt timeout against federation peers (0 = default 10s)")
	readyTimeout := flag.Duration("ready-timeout", service.DefaultReadyTimeout, "peer reachability timeout of GET /healthz?ready")
	slowQuery := flag.Duration("slow-query", time.Second, "latency at or above which a query logs as slow (0 = no threshold)")
	debugAddr := flag.String("debug-addr", "", "private listen address for net/http/pprof (empty = disabled)")
	flag.Parse()

	if *schemaFile == "" || *dataDir == "" {
		flag.Usage()
		os.Exit(2)
	}
	raw, err := os.ReadFile(*schemaFile)
	if err != nil {
		fatal(err)
	}
	sch, err := schema.Parse(string(raw))
	if err != nil {
		fatal(err)
	}
	var db *storage.Database
	var wlog *wal.Log
	if *walDir != "" {
		db, wlog, err = service.OpenDurable(sch, *dataDir, wal.Options{
			Dir:              *walDir,
			Fsync:            *fsync,
			FsyncInterval:    *fsyncInterval,
			SegmentMaxBytes:  *segBytes,
			SegmentMaxAge:    *segAge,
			SnapshotInterval: *snapInterval,
		})
		if err != nil {
			fatal(err)
		}
		rec := wlog.Stats().Recovery
		log.Printf("toorjahd: durable under %s (fsync=%s): recovered %d relation(s), %d record(s) replayed in %.1fms",
			*walDir, *fsync, rec.Relations, rec.RecordsReplayed, rec.DurationMS)
	} else {
		db, err = service.LoadDatabase(sch, *dataDir)
		if err != nil {
			fatal(err)
		}
	}

	opts := []toorjah.SystemOption{
		toorjah.WithLatency(*latency),
		toorjah.WithMaxBatch(*maxBatch),
		toorjah.WithRemoteOptions(toorjah.RemoteOptions{Timeout: *remoteTimeout}),
	}
	if !*noCache {
		opts = append(opts, toorjah.WithCache(toorjah.CacheOptions{
			Capacity:        *cacheCap,
			TTL:             *cacheTTL,
			NegativeTTL:     *cacheNegTTL,
			DisableNegative: *noNegative,
		}))
	}
	if *adaptive {
		opts = append(opts, toorjah.WithAdaptiveOrdering())
	}
	sys := toorjah.NewSystem(sch, opts...)
	if err := sys.BindDatabase(db); err != nil {
		fatal(err)
	}
	for _, spec := range remotes {
		if err := sys.AttachRemote(context.Background(), spec); err != nil {
			fatal(err)
		}
		log.Printf("toorjahd: attached federation peer %s", spec)
	}

	svcOpts := []service.Option{
		service.WithMaxIngestBytes(*maxIngest),
		service.WithReadyTimeout(*readyTimeout),
		service.WithQueryLog(obs.NewQueryLog(slog.New(slog.NewTextHandler(os.Stderr, nil)), *slowQuery)),
	}
	if wlog != nil {
		// After every bind: the commit hook must cover each local table, and
		// only then may batches be acknowledged as durable.
		service.WireWAL(sys, wlog)
		svcOpts = append(svcOpts, service.WithWAL(wlog))
	}

	// The server snapshots the probe registry, so it is built after every
	// local and remote relation is bound.
	srv := service.New(sys, toorjah.Options{Parallelism: *parallelism, QueueLen: *queueLen}, svcOpts...)
	if *debugAddr != "" {
		go serveDebug(*debugAddr)
	}
	hs := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Header reads and idle keep-alives are bounded; request
		// read/write stay unbounded because /query streams answers for as
		// long as the extraction runs.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	err = serve(hs, sch.Len(), *dataDir)
	if wlog != nil {
		// After the drain: no in-flight ingest can append once Shutdown
		// returned, so the final flush covers every acknowledged batch.
		if cerr := wlog.Close(); cerr != nil {
			log.Printf("toorjahd: closing WAL: %v", cerr)
		}
	}
	if err != nil {
		fatal(err)
	}
}

// serve runs the HTTP server until it fails or a SIGINT/SIGTERM arrives,
// then shuts down gracefully: the listener closes immediately and in-flight
// requests get drainTimeout to finish.
const drainTimeout = 15 * time.Second

func serve(hs *http.Server, relations int, dataDir string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("toorjahd: %d relation(s) loaded from %s, listening on %s", relations, dataDir, hs.Addr)
	select {
	case err := <-errc:
		return err // never ErrServerClosed: only Shutdown below closes it
	case <-ctx.Done():
		stop() // a second signal kills the process the default way
		log.Printf("toorjahd: signal received, draining connections (up to %s)", drainTimeout)
		sctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		log.Printf("toorjahd: drained, bye")
		return nil
	}
}

// serveDebug exposes net/http/pprof on its own listener with its own mux —
// deliberately never the public one, so CPU/heap/goroutine profiles (and
// the execution tracer) are reachable only from wherever -debug-addr is
// bound, typically localhost.
func serveDebug(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	log.Printf("toorjahd: pprof listening on %s/debug/pprof/", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Printf("toorjahd: debug listener: %v", err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "toorjahd:", err)
	os.Exit(1)
}
