package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"toorjah"
)

// server serves concurrent conjunctive queries over one toorjah.System,
// keeping prepared plans warm: planning (validation, d-graph construction,
// GFP pruning, ordering) runs at most once per distinct query text, and the
// system's cross-query access cache is shared by every request.
// maxPreparedPlans bounds the warm-plan map: query texts carry arbitrary
// client-chosen constants, so distinct texts are unbounded in a long-running
// service; beyond the cap the oldest plan is dropped (plans are cheap to
// rebuild).
const maxPreparedPlans = 1024

type server struct {
	sys   *toorjah.System
	pipe  toorjah.PipeOptions
	start time.Time

	mu        sync.Mutex
	plans     map[string]*toorjah.Query
	planOrder []string // insertion order, for FIFO eviction
	planCap   int
	served    atomic.Int64

	srcMu   sync.Mutex
	sources map[string]toorjah.SourceStats // per-relation accounting, summed over queries
}

func newServer(sys *toorjah.System, pipe toorjah.PipeOptions) *server {
	return &server{
		sys:     sys,
		pipe:    pipe,
		start:   time.Now(),
		plans:   make(map[string]*toorjah.Query),
		planCap: maxPreparedPlans,
		sources: make(map[string]toorjah.SourceStats),
	}
}

// recordSources folds one execution's per-relation accounting into the
// service totals (accesses, source round trips, extracted tuples).
func (s *server) recordSources(stats map[string]toorjah.SourceStats) {
	s.srcMu.Lock()
	defer s.srcMu.Unlock()
	for rel, st := range stats {
		cur := s.sources[rel]
		cur.Add(st)
		s.sources[rel] = cur
	}
}

// sourceSnapshot copies the service-wide per-relation accounting.
func (s *server) sourceSnapshot() (map[string]toorjah.SourceStats, toorjah.SourceStats) {
	s.srcMu.Lock()
	defer s.srcMu.Unlock()
	out := make(map[string]toorjah.SourceStats, len(s.sources))
	var totals toorjah.SourceStats
	for rel, st := range s.sources {
		out[rel] = st
		totals.Add(st)
	}
	return out, totals
}

// handler returns the service's route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/schema", s.handleSchema)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	return mux
}

// prepared returns the warm plan for a query text, planning it on first
// use. Planning runs outside the lock so one slow-to-plan query cannot
// stall every other request; concurrent first requests for the same text
// may plan it twice, and the first to finish wins.
func (s *server) prepared(text string) (*toorjah.Query, error) {
	s.mu.Lock()
	if q, ok := s.plans[text]; ok {
		s.mu.Unlock()
		return q, nil
	}
	s.mu.Unlock()
	q, err := s.sys.Prepare(text)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.plans[text]; ok {
		return existing, nil
	}
	if len(s.plans) >= s.planCap {
		oldest := s.planOrder[0]
		s.planOrder = s.planOrder[1:]
		delete(s.plans, oldest)
	}
	s.plans[text] = q
	s.planOrder = append(s.planOrder, text)
	return q, nil
}

func (s *server) planCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.plans)
}

// answerLine / doneLine / errorLine are the NDJSON frames of /query.
type answerLine struct {
	Answer []string `json:"answer"`
}

type doneLine struct {
	Done      bool    `json:"done"`
	Answers   int     `json:"answers"`
	Accesses  int     `json:"accesses"`
	Batches   int     `json:"batches"`
	Tuples    int     `json:"tuples"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Truncated bool    `json:"truncated,omitempty"`
}

type errorLine struct {
	Error string `json:"error"`
}

// handleQuery answers one conjunctive query, streaming each answer as an
// NDJSON line the moment the pipelined engine derives it, then a final
// summary line. The query text comes from the q parameter (GET) or the
// request body (POST); limit, when positive, stops after that many answers.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var text string
	switch r.Method {
	case http.MethodGet:
		text = r.URL.Query().Get("q")
	case http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		text = string(body)
		if strings.TrimSpace(text) == "" {
			text = r.URL.Query().Get("q")
		}
	default:
		http.Error(w, "use GET ?q= or POST with the query as body", http.StatusMethodNotAllowed)
		return
	}
	if strings.TrimSpace(text) == "" {
		http.Error(w, "empty query; pass ?q= or a request body", http.StatusBadRequest)
		return
	}
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "limit must be a non-negative integer", http.StatusBadRequest)
			return
		}
		limit = n
	}
	q, err := s.prepared(text)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	opts := s.pipe
	opts.Limit = limit
	// A disconnected client cancels the run, so the executor stops
	// spending accesses on an answer nobody will read.
	opts.Ctx = r.Context()
	// onAnswer runs on the goroutine executing Stream, so writing to the
	// response here is single-threaded.
	res, err := q.Stream(opts, func(t toorjah.Tuple) {
		enc.Encode(answerLine{Answer: t})
		if flusher != nil {
			flusher.Flush()
		}
	})
	if err != nil {
		// The stream may already be half-written; report the error in-band.
		enc.Encode(errorLine{Error: err.Error()})
		return
	}
	s.recordSources(res.Stats)
	if r.Context().Err() != nil {
		return // client gone; nobody is reading the summary
	}
	s.served.Add(1)
	enc.Encode(doneLine{
		Done:      true,
		Answers:   res.Answers.Len(),
		Accesses:  res.TotalAccesses(),
		Batches:   res.TotalBatches(),
		Tuples:    res.TotalTuples(),
		ElapsedMS: float64(res.Elapsed.Microseconds()) / 1000,
		Truncated: res.Truncated,
	})
}

// statsResponse is the payload of /stats.
type statsResponse struct {
	UptimeSeconds float64           `json:"uptime_seconds"`
	QueriesServed int64             `json:"queries_served"`
	PreparedPlans int               `json:"prepared_plans"`
	Sources       *sourceStatsBlock `json:"sources"`
	Cache         *cacheStatsBlock  `json:"cache"`
}

// sourceStatsBlock aggregates per-relation source accounting over every
// query the service has executed: accesses (the paper's cost metric),
// batches (actual round trips — accesses/batches is the mean batch size
// bought by -max-batch), and extracted tuples.
type sourceStatsBlock struct {
	Totals    toorjah.SourceStats            `json:"totals"`
	Relations map[string]toorjah.SourceStats `json:"relations"`
}

type cacheStatsBlock struct {
	Entries   int                           `json:"entries"`
	Totals    toorjah.CacheStats            `json:"totals"`
	Relations map[string]toorjah.CacheStats `json:"relations"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		QueriesServed: s.served.Load(),
		PreparedPlans: s.planCount(),
	}
	if rels, totals := s.sourceSnapshot(); len(rels) > 0 {
		resp.Sources = &sourceStatsBlock{Totals: totals, Relations: rels}
	}
	if c := s.sys.AccessCache(); c != nil {
		// One snapshot pass; totals and entry count derive from it rather
		// than re-walking (and re-locking) every cache shard.
		snap := c.Snapshot()
		var totals toorjah.CacheStats
		for _, st := range snap {
			totals.Add(st)
		}
		resp.Cache = &cacheStatsBlock{
			Entries:   int(totals.Entries),
			Totals:    totals,
			Relations: snap,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

func (s *server) handleSchema(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, rel := range s.sys.Schema().Relations() {
		fmt.Fprintln(w, rel)
	}
}
