package main

import (
	"strings"
	"testing"
)

// TestFig6Smoke: the Fig. 6 reproduction renders its table on a scaled-down
// instance.
func TestFig6Smoke(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "6", "-tuples", "120", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"Fig. 6", "naive", "optimized"} {
		if !strings.Contains(got, want) {
			t.Errorf("Fig6 output missing %q:\n%.300s", want, got)
		}
	}
}

// TestFig10Smoke: the aggregate experiment runs on a tiny random workload.
func TestFig10Smoke(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "10", "-schemas", "2", "-queries", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Fig. 10") {
		t.Errorf("Fig10 output:\n%.300s", out.String())
	}
}

// TestFig11Smoke: the timing experiment runs with a microscopic latency.
func TestFig11Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	var out strings.Builder
	if err := run([]string{"-fig", "11", "-schemas", "1", "-queries", "2", "-latency-us", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Fig. 11") {
		t.Errorf("Fig11 output:\n%.300s", out.String())
	}
}

// TestUsageErrors: unknown figures and bad flags fail cleanly.
func TestUsageErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "12"}, &out); err == nil {
		t.Error("unknown figure: want error")
	}
	if err := run([]string{"-not-a-flag"}, &out); err != errUsage {
		t.Errorf("bad flag: err = %v, want errUsage", err)
	}
}
