// Command experiments regenerates every table and figure of the
// experimental evaluation of Calì & Martinenghi, ICDE 2008 (Section V):
//
//	experiments -fig 6    per-relation accesses and rows, naive vs
//	                      optimized, for q1–q3 over the publication schema
//	experiments -fig 10   aggregate arc/savings statistics over random
//	                      schemata and queries
//	experiments -fig 11   average execution times by query size, naive vs
//	                      optimized, with simulated per-access latency
//	experiments -fig all  everything
//
// Absolute numbers differ from the paper (different generator seeds and an
// in-memory store instead of PostgreSQL); the shapes — which relations are
// pruned, who wins and by what factor — are the reproduction target. See
// EXPERIMENTS.md for the recorded comparison.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"toorjah/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err == errUsage {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// errUsage marks a bad invocation (usage already printed).
var errUsage = errors.New("usage")

// run is the whole CLI, factored out of main so the tests can drive the
// binary end to end without spawning a process.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure to regenerate: 6, 10, 11 or all")
	seed := fs.Int64("seed", 1, "workload seed")
	schemas := fs.Int("schemas", 12, "random schemata for figs 10/11")
	queries := fs.Int("queries", 25, "random queries per schema for figs 10/11")
	tuples := fs.Int("tuples", 1000, "tuples per relation for fig 6")
	latencyUS := fs.Int("latency-us", 200, "simulated per-access latency in µs for fig 11")
	if err := fs.Parse(args); err != nil {
		return errUsage
	}
	ctx := context.Background()

	// The old main dropped the figure errors on the floor; propagate them,
	// so a generation failure exits non-zero instead of truncating output.
	switch *fig {
	case "6":
		return experiments.Fig6(ctx, stdout, *seed, *tuples)
	case "10":
		return experiments.Fig10(ctx, stdout, *seed, *schemas, *queries)
	case "11":
		return experiments.Fig11(ctx, stdout, *seed, *schemas, *queries, *latencyUS)
	case "all":
		if err := experiments.Fig6(ctx, stdout, *seed, *tuples); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
		if err := experiments.Fig10(ctx, stdout, *seed, *schemas, *queries); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
		return experiments.Fig11(ctx, stdout, *seed, *schemas, *queries, *latencyUS)
	default:
		return fmt.Errorf("unknown figure %q (want 6, 10, 11 or all)", *fig)
	}
}
