// Command experiments regenerates every table and figure of the
// experimental evaluation of Calì & Martinenghi, ICDE 2008 (Section V):
//
//	experiments -fig 6    per-relation accesses and rows, naive vs
//	                      optimized, for q1–q3 over the publication schema
//	experiments -fig 10   aggregate arc/savings statistics over random
//	                      schemata and queries
//	experiments -fig 11   average execution times by query size, naive vs
//	                      optimized, with simulated per-access latency
//	experiments -fig all  everything
//
// Absolute numbers differ from the paper (different generator seeds and an
// in-memory store instead of PostgreSQL); the shapes — which relations are
// pruned, who wins and by what factor — are the reproduction target. See
// EXPERIMENTS.md for the recorded comparison.
package main

import (
	"flag"
	"fmt"
	"os"

	"toorjah/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 6, 10, 11 or all")
	seed := flag.Int64("seed", 1, "workload seed")
	schemas := flag.Int("schemas", 12, "random schemata for figs 10/11")
	queries := flag.Int("queries", 25, "random queries per schema for figs 10/11")
	tuples := flag.Int("tuples", 1000, "tuples per relation for fig 6")
	latencyUS := flag.Int("latency-us", 200, "simulated per-access latency in µs for fig 11")
	flag.Parse()

	switch *fig {
	case "6":
		experiments.Fig6(os.Stdout, *seed, *tuples)
	case "10":
		experiments.Fig10(os.Stdout, *seed, *schemas, *queries)
	case "11":
		experiments.Fig11(os.Stdout, *seed, *schemas, *queries, *latencyUS)
	case "all":
		experiments.Fig6(os.Stdout, *seed, *tuples)
		fmt.Fprintln(os.Stdout)
		experiments.Fig10(os.Stdout, *seed, *schemas, *queries)
		fmt.Fprintln(os.Stdout)
		experiments.Fig11(os.Stdout, *seed, *schemas, *queries, *latencyUS)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q (want 6, 10, 11 or all)\n", *fig)
		os.Exit(2)
	}
}
