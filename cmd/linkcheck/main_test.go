package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write creates a file under dir, making parents.
func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLinkcheckPasses(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "other.md", "# Other Title\n\n## A Section Here\n")
	write(t, dir, "sub/file.go", "package x\n")
	doc := write(t, dir, "doc.md", strings.Join([]string{
		"# Doc",
		"",
		"## First Section",
		"",
		"A [file link](sub/file.go), a [doc link](other.md), a",
		"[cross anchor](other.md#a-section-here), a [self anchor](#first-section),",
		"an [external](https://example.com/nope) (never fetched), a [dir](sub).",
		"",
		"```",
		"[not a link](nothing.md) — fenced code is ignored",
		"```",
	}, "\n"))
	var out strings.Builder
	if err := run([]string{doc}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
}

func TestLinkcheckFindsBreakage(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "other.md", "# Other\n")
	doc := write(t, dir, "doc.md", strings.Join([]string{
		"# Doc",
		"",
		"[missing file](nope.md) and [missing anchor](#nowhere) and",
		"[missing cross anchor](other.md#gone).",
	}, "\n"))
	var out strings.Builder
	err := run([]string{doc}, &out)
	if err == nil {
		t.Fatalf("run passed on broken links:\n%s", out.String())
	}
	for _, want := range []string{"nope.md", "#nowhere", "#gone"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
	if !strings.Contains(err.Error(), "3 broken") {
		t.Errorf("err = %v, want 3 broken links", err)
	}
}

// TestRepoDocs runs the checker over the repository's real documentation,
// so a broken link fails `go test` even before the CI docs job runs.
func TestRepoDocs(t *testing.T) {
	root := "../.."
	files := []string{
		filepath.Join(root, "README.md"),
		filepath.Join(root, "ARCHITECTURE.md"),
		filepath.Join(root, "examples", "README.md"),
	}
	var out strings.Builder
	if err := run(files, &out); err != nil {
		t.Fatalf("repository docs: %v\n%s", err, out.String())
	}
}
