// Command linkcheck verifies the repository documentation's internal
// links: for every markdown file given, each inline link `[text](target)`
// must resolve — relative targets to an existing file or directory, and
// `#anchor` fragments (same-file or cross-file) to a heading whose GitHub
// slug matches. External targets (http, https, mailto) are skipped: CI must
// not depend on the network. Links inside fenced code blocks are ignored.
//
//	linkcheck README.md ARCHITECTURE.md examples/README.md
//
// The exit status is non-zero when any link is broken; every broken link
// is reported, not only the first. It has no dependencies outside the
// standard library, so the docs CI job is one `go run ./cmd/linkcheck`.
package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "linkcheck:", err)
		os.Exit(1)
	}
}

// run checks every file and reports all broken links; it returns an error
// when any were found (or a file could not be read).
func run(files []string, out io.Writer) error {
	if len(files) == 0 {
		return fmt.Errorf("usage: linkcheck <markdown files>")
	}
	broken := 0
	for _, f := range files {
		links, err := extractLinks(f)
		if err != nil {
			return err
		}
		for _, l := range links {
			if msg := checkLink(f, l); msg != "" {
				fmt.Fprintf(out, "%s:%d: %s\n", f, l.line, msg)
				broken++
			}
		}
	}
	if broken > 0 {
		return fmt.Errorf("%d broken link(s)", broken)
	}
	fmt.Fprintf(out, "linkcheck: %d file(s) ok\n", len(files))
	return nil
}

// link is one inline markdown link occurrence.
type link struct {
	target string
	line   int
}

// linkRE matches inline links and images: [text](target) — the target up
// to the first closing parenthesis or title quote.
var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s"]+)[^)]*\)`)

// extractLinks pulls every inline link out of a markdown file, skipping
// fenced code blocks.
func extractLinks(path string) ([]link, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []link
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			out = append(out, link{target: m[1], line: i + 1})
		}
	}
	return out, nil
}

// checkLink validates one link of file; it returns "" when the link is
// fine and a description otherwise.
func checkLink(file string, l link) string {
	t := l.target
	switch {
	case strings.HasPrefix(t, "http://"), strings.HasPrefix(t, "https://"),
		strings.HasPrefix(t, "mailto:"):
		return "" // external: not checked
	case strings.HasPrefix(t, "#"):
		return checkAnchor(file, strings.TrimPrefix(t, "#"))
	}
	path, frag, _ := strings.Cut(t, "#")
	resolved := filepath.Join(filepath.Dir(file), path)
	info, err := os.Stat(resolved)
	if err != nil {
		return fmt.Sprintf("broken link %q: %s does not exist", t, resolved)
	}
	if frag != "" {
		if info.IsDir() || !strings.HasSuffix(resolved, ".md") {
			return "" // anchors are only checkable in markdown files
		}
		return checkAnchor(resolved, frag)
	}
	return ""
}

// checkAnchor verifies that a markdown file has a heading whose GitHub
// slug equals the fragment.
func checkAnchor(path, frag string) string {
	anchors, err := headingSlugs(path)
	if err != nil {
		return err.Error()
	}
	if !anchors[frag] {
		return fmt.Sprintf("broken anchor #%s in %s", frag, path)
	}
	return ""
}

// headingSlugs returns the set of GitHub-style anchor slugs of a markdown
// file's headings (duplicate headings get -1, -2, … suffixes, as on
// GitHub).
func headingSlugs(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]bool)
	counts := make(map[string]int)
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(trimmed, "#") {
			continue
		}
		text := strings.TrimLeft(trimmed, "#")
		if text == trimmed || (text != "" && !strings.HasPrefix(text, " ")) {
			continue // not a heading: no '#' prefix stripped, or "#tag"
		}
		slug := slugify(strings.TrimSpace(text))
		if n := counts[slug]; n > 0 {
			out[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			out[slug] = true
		}
		counts[slug]++
	}
	return out, nil
}

// slugify approximates GitHub's heading-to-anchor rule: lowercase, spaces
// to hyphens, markdown emphasis and punctuation dropped (unicode letters,
// digits, hyphens and underscores survive).
func slugify(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r == ' ':
			b.WriteByte('-')
		case r == '-' || r == '_':
			b.WriteRune(r)
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r > 127:
			b.WriteRune(r)
		}
	}
	return b.String()
}
