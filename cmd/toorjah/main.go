// Command toorjah answers conjunctive queries over access-limited sources
// with an optimized, ⊂-minimal query plan, streaming answers as they are
// found (the system of Calì & Martinenghi, ICDE 2008).
//
//	toorjah -schema schema.txt -data datadir -query "q(R) :- pub1(P, R), conf(P, C, Y), rev(R, C, Y)"
//
// The schema file uses the paper's notation, one relation per line
// ("rev^ooi(Person, ConfName, Year)"); datadir holds one CSV file per
// relation (rev.csv, …). A -query with several non-comment lines is a union
// of conjunctive queries (UCQ), one disjunct per line sharing the head
// predicate and arity; the disjuncts execute concurrently and the distinct
// union answers stream as they are derived.
//
// Relations need not be local: -remote attaches a running toorjahd node as
// a federation peer, sourcing the named relations (or, with a bare
// address, every shared relation no local CSV provides data for) over the
// batched HTTP probe protocol, so one query can join local CSVs with
// relations served by other machines.
// Flags:
//
//	-plan            print the optimized plan (ordering + Datalog program)
//	                 and exit (for a UCQ: one plan per disjunct)
//	-dot             print the d-graph in DOT format and exit (single CQ only)
//	-naive           run the naive algorithm instead of the optimized plan
//	-stats           print per-relation access statistics after the answers
//	-latency         simulated per-access latency (e.g. 50ms)
//	-max-batch       access bindings per source round trip (0 = default 16,
//	                 negative = unbatched)
//	-remote          attach a federation peer, host[:port][=R1,R2] (repeatable)
//	-remote-timeout  per-probe-attempt timeout against peers (default 10s)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"toorjah"
	"toorjah/internal/cq"
	"toorjah/internal/schema"
	"toorjah/internal/storage"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err == errUsage {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "toorjah:", err)
		os.Exit(1)
	}
}

// errUsage marks a bad invocation (usage already printed).
var errUsage = errors.New("usage")

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// run is the whole CLI, factored out of main so the tests can drive the
// binary end to end without spawning a process.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("toorjah", flag.ContinueOnError)
	schemaFile := fs.String("schema", "", "schema file (required)")
	dataDir := fs.String("data", "", "directory of per-relation CSV files (required)")
	queryText := fs.String("query", "", "conjunctive query, or a UCQ with one disjunct per line (required)")
	showPlan := fs.Bool("plan", false, "print the optimized plan and exit")
	showDOT := fs.Bool("dot", false, "print the d-graph in DOT format and exit")
	naive := fs.Bool("naive", false, "use the naive strategy of Fig. 1")
	showStats := fs.Bool("stats", true, "print access statistics")
	latency := fs.Duration("latency", 0, "simulated per-access latency")
	maxBatch := fs.Int("max-batch", 0, "access bindings per source round trip (0 = default 16, negative = unbatched)")
	var remotes multiFlag
	fs.Var(&remotes, "remote", "federation peer to attach, host[:port][=R1,R2] (repeatable)")
	remoteTimeout := fs.Duration("remote-timeout", 0, "per-probe-attempt timeout against federation peers (0 = default 10s)")
	if err := fs.Parse(args); err != nil {
		return errUsage
	}

	if *schemaFile == "" || *queryText == "" ||
		(*dataDir == "" && len(remotes) == 0 && !*showPlan && !*showDOT) {
		fs.Usage()
		return errUsage
	}
	raw, err := os.ReadFile(*schemaFile)
	if err != nil {
		return err
	}
	sch, err := schema.Parse(string(raw))
	if err != nil {
		return err
	}

	sys := toorjah.NewSystem(sch,
		toorjah.WithLatency(*latency),
		toorjah.WithMaxBatch(*maxBatch),
		toorjah.WithRemoteOptions(toorjah.RemoteOptions{Timeout: *remoteTimeout}))
	if *dataDir != "" {
		db, err := loadDatabase(sch, *dataDir)
		if err != nil {
			return err
		}
		if err := sys.BindDatabase(db); err != nil {
			return err
		}
	}
	for _, spec := range remotes {
		if err := sys.AttachRemote(context.Background(), spec); err != nil {
			return err
		}
	}

	if cq.IsUnion(*queryText) {
		return runUCQ(sys, *queryText, *showPlan, *showDOT, *naive, *showStats, stdout)
	}
	q, err := sys.Prepare(*queryText)
	if err != nil {
		return err
	}
	if !q.Answerable() {
		fmt.Fprintln(stdout, "query is not answerable: some relation in it is not queryable; the answer is empty on every instance")
		return nil
	}
	if *showDOT {
		fmt.Fprint(stdout, q.DGraphDOT())
		return nil
	}
	if *showPlan {
		fmt.Fprintf(stdout, "relevant relations:   %s\n", strings.Join(q.RelevantRelations(), ", "))
		fmt.Fprintf(stdout, "irrelevant relations: %s\n", strings.Join(q.IrrelevantRelations(), ", "))
		if q.ForAllMinimal() {
			fmt.Fprintln(stdout, "the ordering is unique: this plan is ∀-minimal")
		}
		fmt.Fprintln(stdout, q.Plan())
		return nil
	}

	ctx := context.Background()
	start := time.Now()
	var res *toorjah.Result
	if *naive {
		res, err = q.Execute(ctx, toorjah.WithExecutor(toorjah.ExecutorNaive))
		if err != nil {
			return err
		}
		for _, t := range res.Answers.Tuples() {
			fmt.Fprintln(stdout, strings.Join(t.Strings(), ", "))
		}
	} else {
		// Stream answers as they are derived (the Toorjah way).
		res, err = q.Execute(ctx, toorjah.OnAnswer(func(t toorjah.Tuple) {
			fmt.Fprintf(stdout, "%s    (after %s)\n", strings.Join(t.Strings(), ", "), time.Since(start).Round(time.Millisecond))
		}))
		if err != nil {
			return err
		}
	}
	printSummary(stdout, sch, res, *showStats)
	return nil
}

// runUCQ answers a union of conjunctive queries through the façade: the
// disjuncts execute concurrently over one registry and the distinct union
// answers stream as the first disjunct derives them.
func runUCQ(sys *toorjah.System, queryText string, showPlan, showDOT, naive, showStats bool, stdout io.Writer) error {
	if showDOT {
		return errors.New("-dot renders a single CQ's d-graph; pass one disjunct at a time")
	}
	u, err := sys.PrepareUCQ(queryText)
	if err != nil {
		return err
	}
	if showPlan {
		for i, q := range u.Disjuncts() {
			fmt.Fprintf(stdout, "-- disjunct %d --\n", i+1)
			if !q.Answerable() {
				fmt.Fprintln(stdout, "not answerable: the answer is empty on every instance")
				continue
			}
			fmt.Fprintf(stdout, "relevant relations:   %s\n", strings.Join(q.RelevantRelations(), ", "))
			fmt.Fprintln(stdout, q.Plan())
		}
		return nil
	}
	if !u.Answerable() {
		fmt.Fprintln(stdout, "no disjunct is answerable; the answer is empty on every instance")
		return nil
	}

	ctx := context.Background()
	start := time.Now()
	var res *toorjah.Result
	if naive {
		res, err = u.Execute(ctx, toorjah.WithExecutor(toorjah.ExecutorNaive))
		if err != nil {
			return err
		}
		for _, t := range res.Answers.Tuples() {
			fmt.Fprintln(stdout, strings.Join(t.Strings(), ", "))
		}
	} else {
		res, err = u.Execute(ctx, toorjah.OnAnswer(func(t toorjah.Tuple) {
			fmt.Fprintf(stdout, "%s    (after %s)\n", strings.Join(t.Strings(), ", "), time.Since(start).Round(time.Millisecond))
		}))
		if err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "-- union of %d disjunct(s)\n", len(u.Disjuncts()))
	printSummary(stdout, sys.Schema(), res, showStats)
	return nil
}

// printSummary renders the shared answer/access footer of both query kinds.
func printSummary(stdout io.Writer, sch *schema.Schema, res *toorjah.Result, showStats bool) {
	fmt.Fprintf(stdout, "-- %d answer(s) in %s\n", res.Answers.Len(), res.Elapsed.Round(time.Millisecond))
	if !showStats {
		return
	}
	fmt.Fprintf(stdout, "-- %d access(es) in %d round trip(s), %d tuple(s) extracted\n",
		res.TotalAccesses(), res.TotalBatches(), res.TotalTuples())
	for _, rel := range sch.Relations() {
		if st, ok := res.Stats[rel.Name]; ok {
			fmt.Fprintf(stdout, "--   %-12s %6d accesses  %6d round trips  %6d rows\n",
				rel.Name, st.Accesses, st.Batches, st.Tuples)
		}
	}
}

// loadDatabase reads one CSV file per schema relation from dir; missing
// files become empty sources.
func loadDatabase(sch *schema.Schema, dir string) (*storage.Database, error) {
	db := storage.NewDatabase()
	for _, rel := range sch.Relations() {
		path := filepath.Join(dir, rel.Name+".csv")
		f, err := os.Open(path)
		if err != nil {
			if os.IsNotExist(err) {
				continue // missing file = empty source
			}
			return nil, err
		}
		tab, err := storage.ReadCSV(rel.Name, rel.Arity(), f)
		f.Close()
		if err != nil {
			return nil, err
		}
		dbt, err := db.Create(rel.Name, rel.Arity())
		if err != nil {
			return nil, err
		}
		dbt.InsertAll(tab.Snapshot().Rows())
	}
	return db, nil
}
