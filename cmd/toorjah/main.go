// Command toorjah answers conjunctive queries over access-limited sources
// with an optimized, ⊂-minimal query plan, streaming answers as they are
// found (the system of Calì & Martinenghi, ICDE 2008).
//
//	toorjah -schema schema.txt -data datadir -query "q(R) :- pub1(P, R), conf(P, C, Y), rev(R, C, Y)"
//
// The schema file uses the paper's notation, one relation per line
// ("rev^ooi(Person, ConfName, Year)"); datadir holds one CSV file per
// relation (rev.csv, …). A -query with several non-comment lines is a union
// of conjunctive queries (UCQ), one disjunct per line sharing the head
// predicate and arity; the disjuncts execute concurrently and the distinct
// union answers stream as they are derived. Flags:
//
//	-plan       print the optimized plan (ordering + Datalog program) and exit
//	            (for a UCQ: one plan per disjunct)
//	-dot        print the d-graph in DOT format and exit (single CQ only)
//	-naive      run the naive algorithm instead of the optimized plan
//	-stats      print per-relation access statistics after the answers
//	-latency    simulated per-access latency (e.g. 50ms)
//	-max-batch  access bindings per source round trip (0 = default 16,
//	            negative = unbatched)
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"toorjah"
	"toorjah/internal/core"
	"toorjah/internal/cq"
	"toorjah/internal/datalog"
	"toorjah/internal/dgraph"
	"toorjah/internal/exec"
	"toorjah/internal/schema"
	"toorjah/internal/source"
	"toorjah/internal/storage"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err == errUsage {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "toorjah:", err)
		os.Exit(1)
	}
}

// errUsage marks a bad invocation (usage already printed).
var errUsage = errors.New("usage")

// run is the whole CLI, factored out of main so the tests can drive the
// binary end to end without spawning a process.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("toorjah", flag.ContinueOnError)
	schemaFile := fs.String("schema", "", "schema file (required)")
	dataDir := fs.String("data", "", "directory of per-relation CSV files (required)")
	queryText := fs.String("query", "", "conjunctive query, or a UCQ with one disjunct per line (required)")
	showPlan := fs.Bool("plan", false, "print the optimized plan and exit")
	showDOT := fs.Bool("dot", false, "print the d-graph in DOT format and exit")
	naive := fs.Bool("naive", false, "use the naive strategy of Fig. 1")
	showStats := fs.Bool("stats", true, "print access statistics")
	latency := fs.Duration("latency", 0, "simulated per-access latency")
	maxBatch := fs.Int("max-batch", 0, "access bindings per source round trip (0 = default 16, negative = unbatched)")
	if err := fs.Parse(args); err != nil {
		return errUsage
	}

	if *schemaFile == "" || *queryText == "" || (*dataDir == "" && !*showPlan && !*showDOT) {
		fs.Usage()
		return errUsage
	}
	raw, err := os.ReadFile(*schemaFile)
	if err != nil {
		return err
	}
	sch, err := schema.Parse(string(raw))
	if err != nil {
		return err
	}
	if cq.IsUnion(*queryText) {
		return runUCQ(sch, *queryText, *dataDir, *showPlan, *showDOT, *naive, *showStats, *latency, *maxBatch, stdout)
	}
	q, err := cq.Parse(*queryText)
	if err != nil {
		return err
	}
	p, err := core.Prepare(sch, q)
	if err != nil {
		return err
	}
	if !p.Answerable() {
		fmt.Fprintln(stdout, "query is not answerable: some relation in it is not queryable; the answer is empty on every instance")
		return nil
	}
	if *showDOT {
		fmt.Fprint(stdout, dgraph.DOT(p.Graph, p.Opt.Solution, true))
		return nil
	}
	if *showPlan {
		fmt.Fprintf(stdout, "relevant relations:   %s\n", strings.Join(p.Opt.RelevantRelations(), ", "))
		fmt.Fprintf(stdout, "irrelevant relations: %s\n", strings.Join(p.Opt.IrrelevantRelations(), ", "))
		if p.Plan.ForAllMinimal() {
			fmt.Fprintln(stdout, "the ordering is unique: this plan is ∀-minimal")
		}
		fmt.Fprintln(stdout, p.Plan)
		return nil
	}

	db, err := loadDatabase(sch, *dataDir)
	if err != nil {
		return err
	}
	reg, err := source.FromDatabase(sch, db, *latency)
	if err != nil {
		return err
	}

	opts := exec.Options{MaxBatch: *maxBatch}
	start := time.Now()
	var res *exec.Result
	if *naive {
		res, err = exec.NaiveOpts(sch, reg, p.Query, p.Typing, opts)
		if err != nil {
			return err
		}
		for _, t := range res.Answers.Tuples() {
			fmt.Fprintln(stdout, strings.Join(t, ", "))
		}
	} else {
		// Stream answers as they are derived (the Toorjah way).
		res, err = exec.Pipelined(p.Plan, reg, exec.PipeOptions{Options: opts}, func(t datalog.Tuple) {
			fmt.Fprintf(stdout, "%s    (after %s)\n", strings.Join(t, ", "), time.Since(start).Round(time.Millisecond))
		})
		if err != nil {
			return err
		}
	}
	printSummary(stdout, sch, res, *showStats)
	return nil
}

// runUCQ answers a union of conjunctive queries through the façade: the
// disjuncts execute concurrently over one registry and the distinct union
// answers stream as the first disjunct derives them.
func runUCQ(sch *schema.Schema, queryText, dataDir string, showPlan, showDOT, naive, showStats bool, latency time.Duration, maxBatch int, stdout io.Writer) error {
	if showDOT {
		return errors.New("-dot renders a single CQ's d-graph; pass one disjunct at a time")
	}
	sys := toorjah.NewSystem(sch, toorjah.WithLatency(latency), toorjah.WithMaxBatch(maxBatch))
	if dataDir != "" {
		db, err := loadDatabase(sch, dataDir)
		if err != nil {
			return err
		}
		if err := sys.BindDatabase(db); err != nil {
			return err
		}
	}
	u, err := sys.PrepareUCQ(queryText)
	if err != nil {
		return err
	}
	if showPlan {
		for i, q := range u.Disjuncts() {
			fmt.Fprintf(stdout, "-- disjunct %d --\n", i+1)
			if !q.Answerable() {
				fmt.Fprintln(stdout, "not answerable: the answer is empty on every instance")
				continue
			}
			fmt.Fprintf(stdout, "relevant relations:   %s\n", strings.Join(q.RelevantRelations(), ", "))
			fmt.Fprintln(stdout, q.Plan())
		}
		return nil
	}
	if !u.Answerable() {
		fmt.Fprintln(stdout, "no disjunct is answerable; the answer is empty on every instance")
		return nil
	}

	start := time.Now()
	var res *toorjah.Result
	if naive {
		res, err = u.ExecuteNaive()
		if err != nil {
			return err
		}
		for _, t := range res.Answers.Tuples() {
			fmt.Fprintln(stdout, strings.Join(t, ", "))
		}
	} else {
		res, err = u.Stream(toorjah.PipeOptions{}, func(t toorjah.Tuple) {
			fmt.Fprintf(stdout, "%s    (after %s)\n", strings.Join(t, ", "), time.Since(start).Round(time.Millisecond))
		})
		if err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "-- union of %d disjunct(s)\n", len(u.Disjuncts()))
	printSummary(stdout, sch, res, showStats)
	return nil
}

// printSummary renders the shared answer/access footer of both query kinds.
func printSummary(stdout io.Writer, sch *schema.Schema, res *exec.Result, showStats bool) {
	fmt.Fprintf(stdout, "-- %d answer(s) in %s\n", res.Answers.Len(), res.Elapsed.Round(time.Millisecond))
	if !showStats {
		return
	}
	fmt.Fprintf(stdout, "-- %d access(es) in %d round trip(s), %d tuple(s) extracted\n",
		res.TotalAccesses(), res.TotalBatches(), res.TotalTuples())
	for _, rel := range sch.Relations() {
		if st, ok := res.Stats[rel.Name]; ok {
			fmt.Fprintf(stdout, "--   %-12s %6d accesses  %6d round trips  %6d rows\n",
				rel.Name, st.Accesses, st.Batches, st.Tuples)
		}
	}
}

// loadDatabase reads one CSV file per schema relation from dir; missing
// files become empty sources.
func loadDatabase(sch *schema.Schema, dir string) (*storage.Database, error) {
	db := storage.NewDatabase()
	for _, rel := range sch.Relations() {
		path := filepath.Join(dir, rel.Name+".csv")
		f, err := os.Open(path)
		if err != nil {
			if os.IsNotExist(err) {
				continue // missing file = empty source
			}
			return nil, err
		}
		tab, err := storage.ReadCSV(rel.Name, rel.Arity(), f)
		f.Close()
		if err != nil {
			return nil, err
		}
		dbt, err := db.Create(rel.Name, rel.Arity())
		if err != nil {
			return nil, err
		}
		dbt.InsertAll(tab.Rows())
	}
	return db, nil
}
