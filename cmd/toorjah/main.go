// Command toorjah answers conjunctive queries over access-limited sources
// with an optimized, ⊂-minimal query plan, streaming answers as they are
// found (the system of Calì & Martinenghi, ICDE 2008).
//
//	toorjah -schema schema.txt -data datadir -query "q(R) :- pub1(P, R), conf(P, C, Y), rev(R, C, Y)"
//
// The schema file uses the paper's notation, one relation per line
// ("rev^ooi(Person, ConfName, Year)"); datadir holds one CSV file per
// relation (rev.csv, …). Flags:
//
//	-plan      print the optimized plan (ordering + Datalog program) and exit
//	-dot       print the d-graph in DOT format and exit
//	-naive     run the naive algorithm instead of the optimized plan
//	-stats     print per-relation access statistics after the answers
//	-latency   simulated per-access latency (e.g. 50ms)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"toorjah/internal/core"
	"toorjah/internal/cq"
	"toorjah/internal/datalog"
	"toorjah/internal/dgraph"
	"toorjah/internal/exec"
	"toorjah/internal/schema"
	"toorjah/internal/source"
	"toorjah/internal/storage"
)

func main() {
	schemaFile := flag.String("schema", "", "schema file (required)")
	dataDir := flag.String("data", "", "directory of per-relation CSV files (required)")
	queryText := flag.String("query", "", "conjunctive query (required)")
	showPlan := flag.Bool("plan", false, "print the optimized plan and exit")
	showDOT := flag.Bool("dot", false, "print the d-graph in DOT format and exit")
	naive := flag.Bool("naive", false, "use the naive strategy of Fig. 1")
	showStats := flag.Bool("stats", true, "print access statistics")
	latency := flag.Duration("latency", 0, "simulated per-access latency")
	flag.Parse()

	if *schemaFile == "" || *queryText == "" || (*dataDir == "" && !*showPlan && !*showDOT) {
		flag.Usage()
		os.Exit(2)
	}
	raw, err := os.ReadFile(*schemaFile)
	if err != nil {
		fatal(err)
	}
	sch, err := schema.Parse(string(raw))
	if err != nil {
		fatal(err)
	}
	q, err := cq.Parse(*queryText)
	if err != nil {
		fatal(err)
	}
	p, err := core.Prepare(sch, q)
	if err != nil {
		fatal(err)
	}
	if !p.Answerable() {
		fmt.Println("query is not answerable: some relation in it is not queryable; the answer is empty on every instance")
		return
	}
	if *showDOT {
		fmt.Print(dgraph.DOT(p.Graph, p.Opt.Solution, true))
		return
	}
	if *showPlan {
		fmt.Printf("relevant relations:   %s\n", strings.Join(p.Opt.RelevantRelations(), ", "))
		fmt.Printf("irrelevant relations: %s\n", strings.Join(p.Opt.IrrelevantRelations(), ", "))
		if p.Plan.ForAllMinimal() {
			fmt.Println("the ordering is unique: this plan is ∀-minimal")
		}
		fmt.Println(p.Plan)
		return
	}

	db := storage.NewDatabase()
	for _, rel := range sch.Relations() {
		path := filepath.Join(*dataDir, rel.Name+".csv")
		f, err := os.Open(path)
		if err != nil {
			if os.IsNotExist(err) {
				continue // missing file = empty source
			}
			fatal(err)
		}
		tab, err := storage.ReadCSV(rel.Name, rel.Arity(), f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		dbt, err := db.Create(rel.Name, rel.Arity())
		if err != nil {
			fatal(err)
		}
		dbt.InsertAll(tab.Rows())
	}
	reg, err := source.FromDatabase(sch, db, *latency)
	if err != nil {
		fatal(err)
	}

	start := time.Now()
	var res *exec.Result
	if *naive {
		res, err = exec.Naive(sch, reg, p.Query, p.Typing)
		if err != nil {
			fatal(err)
		}
		for _, t := range res.Answers.Tuples() {
			fmt.Println(strings.Join(t, ", "))
		}
	} else {
		// Stream answers as they are derived (the Toorjah way).
		res, err = exec.Pipelined(p.Plan, reg, exec.PipeOptions{}, func(t datalog.Tuple) {
			fmt.Printf("%s    (after %s)\n", strings.Join(t, ", "), time.Since(start).Round(time.Millisecond))
		})
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("-- %d answer(s) in %s\n", res.Answers.Len(), res.Elapsed.Round(time.Millisecond))
	if *showStats {
		fmt.Printf("-- %d access(es), %d tuple(s) extracted\n", res.TotalAccesses(), res.TotalTuples())
		for _, rel := range sch.Relations() {
			if st, ok := res.Stats[rel.Name]; ok {
				fmt.Printf("--   %-12s %6d accesses  %6d rows\n", rel.Name, st.Accesses, st.Tuples)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "toorjah:", err)
	os.Exit(1)
}
