package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"toorjah/internal/remote"
	"toorjah/internal/schema"
	"toorjah/internal/source"
	"toorjah/internal/storage"
)

// writeExample lays out the quickstart example (the paper's Example 1) as
// the schema file and CSV data directory the CLI consumes.
func writeExample(t *testing.T) (schemaFile, dataDir string) {
	t.Helper()
	dir := t.TempDir()
	schemaFile = filepath.Join(dir, "schema.txt")
	if err := os.WriteFile(schemaFile, []byte(`
r1^ioo(Artist, Nation, Year)
r2^oio(Title, Year, Artist)
r3^oo(Artist, Album)
`), 0o644); err != nil {
		t.Fatal(err)
	}
	dataDir = filepath.Join(dir, "data")
	if err := os.Mkdir(dataDir, 0o755); err != nil {
		t.Fatal(err)
	}
	csvs := map[string]string{
		"r1": "modugno,italy,1928\nmadonna,usa,1958\ndylan,usa,1941\n",
		"r2": "volare,1958,modugno\nvogue,1990,madonna\nhurricane,1976,dylan\n",
		"r3": "madonna,like_a_virgin\ndylan,desire\n",
	}
	for name, content := range csvs {
		if err := os.WriteFile(filepath.Join(dataDir, name+".csv"), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return schemaFile, dataDir
}

const exampleQuery = "q(N) :- r1(A, N, Y1), r2(volare, Y2, A)"

// TestCLIEndToEnd: the default (pipelined) path loads schema and CSVs,
// answers Example 1, and prints access statistics.
func TestCLIEndToEnd(t *testing.T) {
	schemaFile, dataDir := writeExample(t)
	var out strings.Builder
	err := run([]string{"-schema", schemaFile, "-data", dataDir, "-query", exampleQuery}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "italy") {
		t.Errorf("output lacks the answer 'italy':\n%s", got)
	}
	if !strings.Contains(got, "-- 1 answer(s)") {
		t.Errorf("output lacks the answer summary:\n%s", got)
	}
	if !strings.Contains(got, "access(es)") || !strings.Contains(got, "round trip(s)") {
		t.Errorf("output lacks access statistics:\n%s", got)
	}
}

// TestCLINaive: the -naive strategy agrees on the answer.
func TestCLINaive(t *testing.T) {
	schemaFile, dataDir := writeExample(t)
	var out strings.Builder
	err := run([]string{"-schema", schemaFile, "-data", dataDir, "-naive", "-query", exampleQuery}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "italy") || !strings.Contains(got, "-- 1 answer(s)") {
		t.Errorf("naive output wrong:\n%s", got)
	}
}

// TestCLIUnbatched: -max-batch -1 must not change the answer, and the
// round-trip count then equals the access count.
func TestCLIUnbatched(t *testing.T) {
	schemaFile, dataDir := writeExample(t)
	var out strings.Builder
	err := run([]string{"-schema", schemaFile, "-data", dataDir, "-max-batch", "-1", "-query", exampleQuery}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "italy") {
		t.Errorf("unbatched output lacks the answer:\n%s", got)
	}
	// "-- N access(es) in N round trip(s)" with batching off.
	for _, line := range strings.Split(got, "\n") {
		if strings.Contains(line, "round trip(s)") {
			f := strings.Fields(line)
			if len(f) > 4 && f[1] != f[4] {
				t.Errorf("unbatched accesses != round trips: %q", line)
			}
		}
	}
}

// A union over the example data: both disjuncts stream into one
// deduplicated answer set (usa appears via madonna and dylan but once).
const exampleUCQ = "q(N) :- r1(A, N, Y1), r2(volare, Y2, A)\nq(N) :- r1(A, N, Y1), r3(A, AL)"

// TestCLIUCQ: a multi-line -query runs as a union of conjunctive queries,
// streaming deduplicated answers with merged access statistics.
func TestCLIUCQ(t *testing.T) {
	schemaFile, dataDir := writeExample(t)
	var out strings.Builder
	err := run([]string{"-schema", schemaFile, "-data", dataDir, "-query", exampleUCQ}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	// Disjunct 1 answers italy; disjunct 2 answers usa (twice in the data,
	// once in the union).
	for _, want := range []string{"italy", "usa", "union of 2 disjunct(s)", "-- 2 answer(s)"} {
		if !strings.Contains(got, want) {
			t.Errorf("UCQ output lacks %q:\n%s", want, got)
		}
	}
	if strings.Count(got, "usa") != 1 {
		t.Errorf("usa streamed more than once (dedup broken):\n%s", got)
	}
	if !strings.Contains(got, "access(es)") {
		t.Errorf("UCQ output lacks access statistics:\n%s", got)
	}
}

// TestCLIUCQNaive: the naive strategy agrees on the union.
func TestCLIUCQNaive(t *testing.T) {
	schemaFile, dataDir := writeExample(t)
	var out strings.Builder
	err := run([]string{"-schema", schemaFile, "-data", dataDir, "-naive", "-query", exampleUCQ}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "italy") || !strings.Contains(got, "usa") || !strings.Contains(got, "-- 2 answer(s)") {
		t.Errorf("naive UCQ output wrong:\n%s", got)
	}
}

// TestCLIUCQPlan: -plan on a union prints one plan per disjunct; -dot is a
// single-CQ view and errors.
func TestCLIUCQPlan(t *testing.T) {
	schemaFile, _ := writeExample(t)
	var out strings.Builder
	if err := run([]string{"-schema", schemaFile, "-plan", "-query", exampleUCQ}, &out); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "disjunct 1") || !strings.Contains(got, "disjunct 2") {
		t.Errorf("UCQ plan output wrong:\n%s", got)
	}
	if err := run([]string{"-schema", schemaFile, "-dot", "-query", exampleUCQ}, &out); err == nil {
		t.Error("-dot on a UCQ must error")
	}
}

// TestCLIPlanOnly: -plan prints the optimization outcome without data.
func TestCLIPlanOnly(t *testing.T) {
	schemaFile, _ := writeExample(t)
	var out strings.Builder
	err := run([]string{"-schema", schemaFile, "-plan", "-query", exampleQuery}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "relevant relations") {
		t.Errorf("plan output wrong:\n%s", got)
	}
}

// TestCLIDot: -dot prints the d-graph.
func TestCLIDot(t *testing.T) {
	schemaFile, _ := writeExample(t)
	var out strings.Builder
	err := run([]string{"-schema", schemaFile, "-dot", "-query", exampleQuery}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "digraph") {
		t.Errorf("dot output wrong:\n%s", got)
	}
}

// TestCLIUsageErrors: missing required flags are a usage error, not a run.
func TestCLIUsageErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-query", exampleQuery}, &out); err != errUsage {
		t.Errorf("missing -schema: err = %v, want errUsage", err)
	}
	schemaFile, _ := writeExample(t)
	if err := run([]string{"-schema", schemaFile}, &out); err != errUsage {
		t.Errorf("missing -query: err = %v, want errUsage", err)
	}
}

// TestCLIBadSchema: parse errors surface as errors, not panics.
func TestCLIBadSchema(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "schema.txt")
	if err := os.WriteFile(bad, []byte("not a schema line\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-schema", bad, "-data", dir, "-query", exampleQuery}, &out); err == nil {
		t.Error("bad schema must error")
	}
}

// TestCLIRemote: -remote attaches a federation peer, so the CLI answers a
// query joining a local CSV relation with relations served by another node.
func TestCLIRemote(t *testing.T) {
	// The peer serves r2 and r3; only r1 exists locally.
	peerSch := schema.MustParse(`
r2^oio(Title, Year, Artist)
r3^oo(Artist, Album)
`)
	db := storage.NewDatabase()
	for name, rows := range map[string][]storage.Row{
		"r2": {{"volare", "1958", "modugno"}, {"vogue", "1990", "madonna"}},
		"r3": {{"madonna", "like_a_virgin"}},
	} {
		tab, err := db.Create(name, peerSch.Relation(name).Arity())
		if err != nil {
			t.Fatal(err)
		}
		tab.InsertAll(rows)
	}
	reg, err := source.FromDatabase(peerSch, db, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(remote.PeerMux(reg))
	defer ts.Close()

	dir := t.TempDir()
	schemaFile := filepath.Join(dir, "schema.txt")
	if err := os.WriteFile(schemaFile, []byte(`
r1^ioo(Artist, Nation, Year)
r2^oio(Title, Year, Artist)
r3^oo(Artist, Album)
`), 0o644); err != nil {
		t.Fatal(err)
	}
	dataDir := filepath.Join(dir, "data")
	if err := os.Mkdir(dataDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dataDir, "r1.csv"),
		[]byte("modugno,italy,1928\nmadonna,usa,1958\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	err = run([]string{"-schema", schemaFile, "-data", dataDir,
		"-remote", ts.URL, "-query", exampleQuery}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "italy") {
		t.Errorf("federated CLI output lacks the answer 'italy':\n%s", out.String())
	}

	// All-remote: no -data at all, explicit relation list.
	var out2 strings.Builder
	err = run([]string{"-schema", schemaFile,
		"-remote", ts.URL + "=r2,r3", "-query", "q(T) :- r2(T, 1958, A)"}, &out2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2.String(), "volare") {
		t.Errorf("all-remote CLI output lacks 'volare':\n%s", out2.String())
	}

	// An unreachable peer is a startup error, not a silent empty answer.
	var out3 strings.Builder
	if err := run([]string{"-schema", schemaFile, "-data", dataDir,
		"-remote", "http://127.0.0.1:1", "-query", exampleQuery}, &out3); err == nil {
		t.Error("dead peer: want error")
	}
}
