package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for the CLI to analyze.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const dirtyPool = `package lib

import "sync"

var p = sync.Pool{New: func() any { return map[string]int{} }}

func Recycle(m map[string]int) {
	p.Put(m)
}
`

const cleanPool = `package lib

import "sync"

var p = sync.Pool{New: func() any { return map[string]int{} }}

func Recycle(m map[string]int) {
	clear(m)
	p.Put(m)
}
`

func TestRunFlagsViolation(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":     "module example.com/tmp\n\ngo 1.23\n",
		"lib/lib.go": dirtyPool,
	})
	jsonOut := filepath.Join(dir, "diags.json")
	mdOut := filepath.Join(dir, "summary.md")
	err := run(dir, jsonOut, mdOut, "", nil)
	if err == nil || !strings.Contains(err.Error(), "invariant violations") {
		t.Fatalf("run on dirty module: err = %v, want violations", err)
	}

	data, readErr := os.ReadFile(jsonOut)
	if readErr != nil {
		t.Fatal(readErr)
	}
	var diags []struct {
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(data, &diags); err != nil {
		t.Fatalf("bad -json output: %v\n%s", err, data)
	}
	if len(diags) != 1 || diags[0].Analyzer != "pool-hygiene" {
		t.Fatalf("diags = %+v, want one pool-hygiene finding", diags)
	}

	md, readErr := os.ReadFile(mdOut)
	if readErr != nil {
		t.Fatal(readErr)
	}
	if !strings.Contains(string(md), "pool-hygiene") || !strings.Contains(string(md), "1 violation") {
		t.Fatalf("markdown summary missing the finding:\n%s", md)
	}
}

func TestRunCleanModule(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":     "module example.com/tmp\n\ngo 1.23\n",
		"lib/lib.go": cleanPool,
	})
	if err := run(dir, "", "", "", nil); err != nil {
		t.Fatalf("run on clean module: %v", err)
	}
}

func TestRunOnlySelection(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":     "module example.com/tmp\n\ngo 1.23\n",
		"lib/lib.go": dirtyPool,
	})
	// The violation is invisible to a different analyzer...
	if err := run(dir, "", "", "handler-hygiene", nil); err != nil {
		t.Fatalf("run -only handler-hygiene: %v", err)
	}
	// ...found by the selected one...
	if err := run(dir, "", "", "pool-hygiene", nil); err == nil {
		t.Fatal("run -only pool-hygiene found nothing")
	}
	// ...and unknown names are an error, not a silent no-op.
	if err := run(dir, "", "", "no-such-analyzer", nil); err == nil ||
		!strings.Contains(err.Error(), "unknown analyzer") {
		t.Fatalf("unknown analyzer: err = %v", err)
	}
}

func TestRunPackagePatterns(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":       "module example.com/tmp\n\ngo 1.23\n",
		"lib/lib.go":   dirtyPool,
		"other/ok.go":  "package other\n",
		"other/ok2.go": "package other\n\nfunc Fine() {}\n",
	})
	// Restricting to the clean package passes; the dirty one fails.
	if err := run(dir, "", "", "", []string{"./other"}); err != nil {
		t.Fatalf("run ./other: %v", err)
	}
	if err := run(dir, "", "", "", []string{"./lib"}); err == nil {
		t.Fatal("run ./lib missed the violation")
	}
	if err := run(dir, "", "", "", []string{"./..."}); err == nil {
		t.Fatal("run ./... missed the violation")
	}
}
