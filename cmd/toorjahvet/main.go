// Command toorjahvet runs toorjah's repo-specific invariant analyzers
// (internal/analysis) over every package of the module and reports
// violations. Like cmd/linkcheck it depends on nothing beyond the standard
// library, so it runs anywhere the toolchain does:
//
//	go run ./cmd/toorjahvet ./...
//
// Exit status is 1 if any diagnostic is reported. -json and -md write
// machine-readable and Markdown reports for CI; -only restricts the run to
// a comma-separated subset of analyzers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"toorjah/internal/analysis"
)

func main() {
	var (
		dir      = flag.String("C", ".", "module directory (holding go.mod, possibly above)")
		jsonOut  = flag.String("json", "", "write diagnostics as JSON to this file")
		mdOut    = flag.String("md", "", "write a Markdown summary to this file ('-' for stdout)")
		only     = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		listOnly = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()
	if *listOnly {
		for _, a := range analysis.Suite() {
			fmt.Printf("%-20s %s\n", a.Name, a.Doc)
		}
		return
	}
	if err := run(*dir, *jsonOut, *mdOut, *only, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "toorjahvet:", err)
		os.Exit(1)
	}
}

// errFound distinguishes "violations reported" from operational errors.
var errFound = fmt.Errorf("invariant violations found")

func run(dir, jsonOut, mdOut, only string, patterns []string) error {
	root, err := findModuleRoot(dir)
	if err != nil {
		return err
	}
	analyzers, err := selectAnalyzers(only)
	if err != nil {
		return err
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		return err
	}
	diags := analysis.Run(mod, analyzers, selectPackages(mod, patterns))
	for _, d := range diags {
		fmt.Println(relativize(root, d))
	}
	if jsonOut != "" {
		if err := writeJSON(jsonOut, diags); err != nil {
			return err
		}
	}
	if mdOut != "" {
		if err := writeMarkdown(mdOut, analyzers, diags); err != nil {
			return err
		}
	}
	if len(diags) > 0 {
		return fmt.Errorf("%w: %d", errFound, len(diags))
	}
	return nil
}

// findModuleRoot walks up from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		if d == filepath.Dir(d) {
			return "", fmt.Errorf("no go.mod at or above %s", abs)
		}
	}
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return analysis.Suite(), nil
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a := analysis.ByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q (try -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// selectPackages filters the module's packages by the given patterns.
// "./..." (or no pattern) selects everything; "./internal/exec" or the full
// import path selects one package; a trailing "/..." selects a subtree.
func selectPackages(mod *analysis.Module, patterns []string) []*analysis.Package {
	if len(patterns) == 0 {
		return mod.Pkgs
	}
	match := func(p *analysis.Package) bool {
		for _, pat := range patterns {
			pat = strings.TrimPrefix(pat, "./")
			if pat == "..." {
				return true
			}
			full := pat
			if !strings.HasPrefix(full, mod.Path) {
				full = mod.Path + "/" + pat
			}
			if sub, ok := strings.CutSuffix(full, "/..."); ok {
				if p.Path == sub || strings.HasPrefix(p.Path, sub+"/") {
					return true
				}
			} else if p.Path == full {
				return true
			}
		}
		return false
	}
	var out []*analysis.Package
	for _, p := range mod.Pkgs {
		if match(p) {
			out = append(out, p)
		}
	}
	return out
}

// relativize renders one diagnostic with the filename relative to root.
func relativize(root string, d analysis.Diagnostic) string {
	if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d.String()
}

func writeJSON(path string, diags []analysis.Diagnostic) error {
	if diags == nil {
		diags = []analysis.Diagnostic{}
	}
	data, err := json.MarshalIndent(diags, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeMarkdown renders a GitHub-flavored summary table, suitable for
// $GITHUB_STEP_SUMMARY.
func writeMarkdown(path string, analyzers []*analysis.Analyzer, diags []analysis.Diagnostic) error {
	var b strings.Builder
	fmt.Fprintf(&b, "### toorjahvet — %d analyzer(s)\n\n", len(analyzers))
	if len(diags) == 0 {
		b.WriteString("No invariant violations. ✅\n")
	} else {
		fmt.Fprintf(&b, "**%d violation(s):**\n\n", len(diags))
		b.WriteString("| Location | Analyzer | Message |\n|---|---|---|\n")
		for _, d := range diags {
			fmt.Fprintf(&b, "| `%s:%d` | %s | %s |\n",
				filepath.Base(d.Pos.Filename), d.Pos.Line, d.Analyzer,
				strings.ReplaceAll(d.Message, "|", "\\|"))
		}
	}
	if path == "-" {
		_, err := os.Stdout.WriteString(b.String())
		return err
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
