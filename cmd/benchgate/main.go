// Command benchgate turns `go test -bench` output into a benchstat-style
// JSON snapshot and gates it against a committed baseline. CI runs:
//
//	go test -bench=. -benchtime=1x -run='^$' . | tee bench.txt
//	go run ./cmd/benchgate -in bench.txt -json BENCH_PR6.json -baseline BENCH_BASELINE.json
//
// The JSON snapshot is uploaded as a build artifact; the gate exits
// non-zero when any gated metric regresses beyond its threshold (see
// internal/benchfmt for what is gated). Three metric classes gate
// independently: access counts (the paper's deterministic cost model,
// tight threshold), allocs/op (the integer-tuple hot path's allocation
// budget, needs -benchmem output, wider threshold), and ns/op (always
// printed per benchmark against the baseline but only gated when a
// positive -time-threshold is passed — single-iteration timings vary
// across runners, so the floor and threshold are generous). Refresh the
// committed baseline by downloading a healthy run's artifact — or
// regenerating locally with -benchmem — and committing it as
// BENCH_BASELINE.json.
//
// Flags:
//
//	-in              raw benchmark output to parse (default stdin)
//	-injson          read the current snapshot from a JSON file instead of
//	                 parsing benchmark text (e.g. a cmd/loadgen report)
//	-json            write the parsed snapshot to this path
//	-baseline        committed snapshot to gate against (no gating when absent)
//	-threshold       allowed fractional growth of count metrics (default 0.25)
//	-alloc-threshold allowed fractional growth of allocs/op; 0 disables
//	                 (default 0.5)
//	-time-threshold  allowed fractional growth of ns/op; 0 (the default)
//	                 prints wall-clock deltas without gating them
//	-floor           ns/op below which a benchmark's time is never gated
//	                 (default 5ms)
//	-md              append a benchstat-style markdown delta table to this
//	                 file (CI points it at $GITHUB_STEP_SUMMARY)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"toorjah/internal/benchfmt"
)

func main() {
	in := flag.String("in", "", "benchmark output file (default stdin)")
	inJSON := flag.String("injson", "", "read the current snapshot from this JSON file instead of parsing text")
	jsonOut := flag.String("json", "", "write the parsed snapshot to this path")
	baseline := flag.String("baseline", "", "baseline snapshot to gate against")
	threshold := flag.Float64("threshold", 0.25, "allowed fractional regression of count metrics")
	allocThreshold := flag.Float64("alloc-threshold", 0.5, "allowed fractional regression of allocs/op (0 = never gate)")
	timeThreshold := flag.Float64("time-threshold", 0, "allowed fractional regression of ns/op (0 = print deltas, never gate)")
	floor := flag.Duration("floor", 5*time.Millisecond, "baseline ns/op below which time is not gated")
	markdown := flag.String("md", "", "append a markdown delta table to this file")
	flag.Parse()

	var results []benchfmt.Result
	var err error
	if *inJSON != "" {
		f, err2 := os.Open(*inJSON)
		if err2 != nil {
			fatal(err2)
		}
		results, err = benchfmt.ReadJSON(f)
		f.Close()
	} else {
		var src io.Reader = os.Stdin
		if *in != "" {
			f, err2 := os.Open(*in)
			if err2 != nil {
				fatal(err2)
			}
			defer f.Close()
			src = f
		}
		results, err = benchfmt.Parse(src)
	}
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found"))
	}
	fmt.Printf("benchgate: parsed %d benchmark(s)\n", len(results))

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		if err := benchfmt.WriteJSON(f, results); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: snapshot written to %s\n", *jsonOut)
	}

	var base []benchfmt.Result
	if *baseline != "" {
		bf, err := os.Open(*baseline)
		if err != nil {
			fatal(err)
		}
		base, err = benchfmt.ReadJSON(bf)
		bf.Close()
		if err != nil {
			fatal(err)
		}
	}

	if *markdown != "" {
		f, err := os.OpenFile(*markdown, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		if err := benchfmt.WriteMarkdown(f, base, results); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: markdown summary appended to %s\n", *markdown)
	}

	if base == nil {
		return
	}
	// Wall-clock drift is reported for every benchmark both snapshots
	// measure, gated or not.
	if deltas := benchfmt.TimeDeltas(base, results); len(deltas) > 0 {
		fmt.Printf("benchgate: wall-clock vs %s:\n", *baseline)
		for _, d := range deltas {
			fmt.Printf("  %s\n", d)
		}
	}
	regs := benchfmt.Compare(base, results, benchfmt.Thresholds{
		Count:       *threshold,
		Allocs:      *allocThreshold,
		Time:        *timeThreshold,
		TimeFloorNS: float64(*floor),
	})
	if len(regs) == 0 {
		fmt.Printf("benchgate: no regression beyond %.0f%% (counts) / %.0f%% (allocs) against %s\n",
			*threshold*100, *allocThreshold*100, *baseline)
		return
	}
	fmt.Fprintf(os.Stderr, "benchgate: %d regression(s):\n", len(regs))
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "  %s\n", r)
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
