// Command loadgen is the production workload harness: it replays a
// configurable scenario mix — point CQs, fat UCQs, ingest storms, federated
// probes, injected peer outages — from N concurrent clients against an
// in-process two-node toorjahd cluster (the real internal/service handler
// on real loopback listeners), scores every scenario against its declared
// expected outcome, and reports client-side latency quantiles next to the
// servers' own /metrics deltas.
//
//	go run ./cmd/loadgen -scenarios smoke -duration 20s
//
// Suites are built in (smoke, mixed, adaptive, crash — see internal/load)
// or read from a JSON file:
//
//	{"name": "mine", "scenarios": [
//	  {"name": "point", "kind": "query", "weight": 4,
//	   "query": "q(C, Y) :- conf(p1, C, Y)",
//	   "expect": {"from_ground_truth": true}},
//	  {"name": "storm", "kind": "ingest", "weight": 1,
//	   "relation": "storm", "rows": 100}
//	]}
//
// Expected outcomes (exact answer count, answer-set hash, truncation cap,
// error budget, adaptive-no-worse) are declared per scenario; ground-truth
// expectations are computed before the clock starts by executing the query
// against a reference system holding every relation locally. The run exits
// 1 when any scenario fails its predicates.
//
// The -json snapshot is a benchfmt result array, so two runs diff exactly
// like two benchmark snapshots:
//
//	go run ./cmd/benchgate -injson LOADGEN_PR9.json -baseline LOADGEN_BASELINE.json
//
// -wal runs the query-serving node durable: every applied mutation batch
// reaches a write-ahead log under the given directory before its
// acknowledgement, measuring durable-write overhead under the same mix.
// The crash suite goes further — it re-execs this very binary as durable
// child processes, SIGKILLs them mid-storm (including mid-write, via a WAL
// failpoint), restarts them and scores crash-recovery equivalence against
// a never-crashed twin.
//
// Flags:
//
//	-scenarios  built-in suite name or path to a suite JSON file (default smoke)
//	-duration   timed-phase length (default 10s)
//	-clients    concurrent clients (default 8)
//	-seed       RNG seed for the scenario mix (default 1)
//	-latency    simulated per-access source latency on every node (default 0)
//	-adaptive   serve queries with live-size adaptive plan ordering
//	-wal        write-ahead-log directory for the query-serving node ("" = in-memory)
//	-fsync      WAL flush policy with -wal: always, interval or never (default never)
//	-json       write the benchfmt snapshot to this path
//	-md         write the GFM report to this path (CI: $GITHUB_STEP_SUMMARY)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"toorjah/internal/load"
)

func main() {
	// A crash-suite child re-execs this binary; the env switch turns the
	// process into the durable victim node and never returns.
	load.MaybeRunCrashChild()

	scenarios := flag.String("scenarios", "smoke", "built-in suite name or suite JSON file")
	duration := flag.Duration("duration", 10*time.Second, "timed-phase length")
	clients := flag.Int("clients", 8, "concurrent clients")
	seed := flag.Int64("seed", 1, "RNG seed for the scenario mix")
	latency := flag.Duration("latency", 0, "simulated per-access source latency on every node")
	adaptive := flag.Bool("adaptive", false, "serve queries with live-size adaptive plan ordering")
	walDir := flag.String("wal", "", "write-ahead-log directory for the query-serving node (\"\" = in-memory)")
	fsync := flag.String("fsync", "never", "WAL flush policy when -wal is set: always, interval or never")
	jsonOut := flag.String("json", "", "write the benchfmt snapshot to this path")
	mdOut := flag.String("md", "", "write the GFM report to this path")
	flag.Parse()

	suite, ok := load.BuiltinSuite(*scenarios)
	if !ok {
		f, err := os.Open(*scenarios)
		if err != nil {
			fatal(fmt.Errorf("-scenarios %q is neither a built-in suite %v nor a readable file: %w",
				*scenarios, load.BuiltinSuiteNames(), err))
		}
		suite, err = load.ParseSuite(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cluster, err := load.StartDefaultCluster(ctx, load.DefaultClusterOptions{
		Latency:  *latency,
		Adaptive: *adaptive,
		WALDir:   *walDir,
		Fsync:    *fsync,
	})
	if err != nil {
		fatal(err)
	}
	defer cluster.Close()
	for _, n := range cluster.Nodes {
		fmt.Printf("loadgen: %s serving on %s\n", n.Name, n.URL)
	}

	report, err := load.Run(ctx, cluster, suite, load.Config{
		Clients:  *clients,
		Duration: *duration,
		Seed:     *seed,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Println()
	fmt.Print(report.Text())

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		if err := report.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nloadgen: snapshot written to %s\n", *jsonOut)
	}
	if *mdOut != "" {
		f, err := os.OpenFile(*mdOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		if _, err := f.WriteString(report.Markdown()); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("loadgen: markdown report written to %s\n", *mdOut)
	}

	if !report.Pass() {
		fmt.Fprintln(os.Stderr, "loadgen: FAIL — one or more scenarios violated their expected outcome")
		os.Exit(1)
	}
	fmt.Println("loadgen: PASS")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
