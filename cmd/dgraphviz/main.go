// Command dgraphviz renders the dependency graph and the optimized
// dependency graph of a query in Graphviz DOT format, reproducing the
// paper's Figs. 2, 4, 7, 8 and 9.
//
//	dgraphviz -fig 2           d-graph of the running example (Fig. 2)
//	dgraphviz -fig 4           optimized d-graph of the running example
//	dgraphviz -fig 7|8|9       d-graphs of q1/q2/q3, before and after pruning
//	dgraphviz -schema f -query "q(X) :- ..."   any schema and query
//
// Pipe the output to `dot -Tpdf` to render.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"toorjah/internal/core"
	"toorjah/internal/cq"
	"toorjah/internal/dgraph"
	"toorjah/internal/gen"
	"toorjah/internal/schema"
)

const exampleSchema = `
r1^io(A, B)
r2^io(B, C)
r3^io(C, A)
`

const exampleQuery = "q(C) :- r1(a, B), r2(B, C)"

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err == errUsage {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "dgraphviz:", err)
		os.Exit(1)
	}
}

// errUsage marks a bad invocation (usage already printed).
var errUsage = errors.New("usage")

// run is the whole CLI, factored out of main so the tests can drive the
// binary end to end without spawning a process.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("dgraphviz", flag.ContinueOnError)
	fig := fs.String("fig", "", "paper figure to reproduce: 2, 4, 7, 8 or 9")
	schemaFile := fs.String("schema", "", "schema file (paper notation, one relation per line)")
	queryText := fs.String("query", "", "conjunctive query")
	optimized := fs.Bool("optimized", false, "render the optimized d-graph instead of the full one")
	if err := fs.Parse(args); err != nil {
		return errUsage
	}

	var schText, qText string
	showOpt := *optimized
	switch *fig {
	case "2":
		schText, qText = exampleSchema, exampleQuery
	case "4":
		schText, qText, showOpt = exampleSchema, exampleQuery, true
	case "7", "8", "9":
		schText = gen.PublicationSchemaText
		qText = gen.PublicationQueries[int((*fig)[0]-'7')]
	case "":
		if *schemaFile == "" || *queryText == "" {
			fs.Usage()
			return errUsage
		}
		raw, err := os.ReadFile(*schemaFile)
		if err != nil {
			return err
		}
		schText, qText = string(raw), *queryText
	default:
		return fmt.Errorf("unknown figure %q (want 2, 4, 7, 8 or 9)", *fig)
	}

	sch, err := schema.Parse(schText)
	if err != nil {
		return err
	}
	q, err := cq.Parse(qText)
	if err != nil {
		return err
	}
	p, err := core.Prepare(sch, q)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "// query: %s\n// relevant: %v\n// irrelevant: %v\n",
		qText, p.Opt.RelevantRelations(), p.Opt.IrrelevantRelations())
	if showOpt {
		fmt.Fprint(stdout, dgraph.DOTOptimized(p.Opt))
	} else {
		fmt.Fprint(stdout, dgraph.DOT(p.Graph, p.Opt.Solution, true))
	}
	return nil
}
