// Command dgraphviz renders the dependency graph and the optimized
// dependency graph of a query in Graphviz DOT format, reproducing the
// paper's Figs. 2, 4, 7, 8 and 9.
//
//	dgraphviz -fig 2           d-graph of the running example (Fig. 2)
//	dgraphviz -fig 4           optimized d-graph of the running example
//	dgraphviz -fig 7|8|9       d-graphs of q1/q2/q3, before and after pruning
//	dgraphviz -schema f -query "q(X) :- ..."   any schema and query
//
// Pipe the output to `dot -Tpdf` to render.
package main

import (
	"flag"
	"fmt"
	"os"

	"toorjah/internal/core"
	"toorjah/internal/cq"
	"toorjah/internal/dgraph"
	"toorjah/internal/gen"
	"toorjah/internal/schema"
)

const exampleSchema = `
r1^io(A, B)
r2^io(B, C)
r3^io(C, A)
`

const exampleQuery = "q(C) :- r1(a, B), r2(B, C)"

func main() {
	fig := flag.String("fig", "", "paper figure to reproduce: 2, 4, 7, 8 or 9")
	schemaFile := flag.String("schema", "", "schema file (paper notation, one relation per line)")
	queryText := flag.String("query", "", "conjunctive query")
	optimized := flag.Bool("optimized", false, "render the optimized d-graph instead of the full one")
	flag.Parse()

	var schText, qText string
	showOpt := *optimized
	switch *fig {
	case "2":
		schText, qText = exampleSchema, exampleQuery
	case "4":
		schText, qText, showOpt = exampleSchema, exampleQuery, true
	case "7", "8", "9":
		schText = gen.PublicationSchemaText
		qText = gen.PublicationQueries[int((*fig)[0]-'7')]
	case "":
		if *schemaFile == "" || *queryText == "" {
			fmt.Fprintln(os.Stderr, "need -fig or both -schema and -query")
			os.Exit(2)
		}
		raw, err := os.ReadFile(*schemaFile)
		if err != nil {
			fatal(err)
		}
		schText, qText = string(raw), *queryText
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}

	sch, err := schema.Parse(schText)
	if err != nil {
		fatal(err)
	}
	q, err := cq.Parse(qText)
	if err != nil {
		fatal(err)
	}
	p, err := core.Prepare(sch, q)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("// query: %s\n// relevant: %v\n// irrelevant: %v\n",
		qText, p.Opt.RelevantRelations(), p.Opt.IrrelevantRelations())
	if showOpt {
		fmt.Print(dgraph.DOTOptimized(p.Opt))
	} else {
		fmt.Print(dgraph.DOT(p.Graph, p.Opt.Solution, true))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dgraphviz:", err)
	os.Exit(1)
}
