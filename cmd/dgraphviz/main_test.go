package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFigures: every built-in figure renders valid-looking DOT with the
// relevance annotations.
func TestFigures(t *testing.T) {
	for _, fig := range []string{"2", "4", "7", "8", "9"} {
		var out strings.Builder
		if err := run([]string{"-fig", fig}, &out); err != nil {
			t.Fatalf("-fig %s: %v", fig, err)
		}
		got := out.String()
		if !strings.Contains(got, "digraph") {
			t.Errorf("-fig %s: output is not DOT:\n%.200s", fig, got)
		}
		if !strings.Contains(got, "// relevant:") || !strings.Contains(got, "// query:") {
			t.Errorf("-fig %s: missing annotations:\n%.200s", fig, got)
		}
	}
}

// TestCustomSchemaQuery: the -schema/-query form, plain and -optimized.
func TestCustomSchemaQuery(t *testing.T) {
	dir := t.TempDir()
	schemaFile := filepath.Join(dir, "schema.txt")
	if err := os.WriteFile(schemaFile, []byte(exampleSchema), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, extra := range [][]string{nil, {"-optimized"}} {
		args := append([]string{"-schema", schemaFile, "-query", exampleQuery}, extra...)
		var out strings.Builder
		if err := run(args, &out); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		if !strings.Contains(out.String(), "digraph") {
			t.Errorf("%v: output is not DOT:\n%.200s", args, out.String())
		}
	}
}

// TestUsageAndErrors: bad invocations fail cleanly.
func TestUsageAndErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{}, &out); err != errUsage {
		t.Errorf("no args: err = %v, want errUsage", err)
	}
	if err := run([]string{"-fig", "99"}, &out); err == nil {
		t.Error("unknown figure: want error")
	}
	if err := run([]string{"-schema", "/does/not/exist", "-query", exampleQuery}, &out); err == nil {
		t.Error("missing schema file: want error")
	}
	if err := run([]string{"-query", "q(X) :-"}, &out); err != errUsage {
		t.Errorf("query without schema: err = %v, want errUsage", err)
	}
}
