package toorjah

import (
	"context"

	"toorjah/internal/datalog"
	"toorjah/internal/exec"
	"toorjah/internal/plan"
	"toorjah/internal/source"
)

// Executor selects the execution strategy of Execute.
type Executor int

const (
	// ExecutorFastFail is the fast-failing ⊂-minimal batch strategy of the
	// paper's Section IV — the default: early failure detection, access
	// deduplication, batched probes, all answers at completion.
	ExecutorFastFail Executor = iota
	// ExecutorPipelined is the parallel pipelined engine of Section V:
	// wrapper goroutine pools probe concurrently and answers stream through
	// the OnAnswer callback the moment they become derivable. Selected
	// implicitly when OnAnswer is given without WithExecutor.
	ExecutorPipelined
	// ExecutorNaive is the reference algorithm of the paper's Fig. 1: probe
	// everything probeable until fixpoint. Kept for measurement; it answers
	// queries whose optimized plan does not exist, at maximal access cost.
	ExecutorNaive
)

// execConfig is the resolved configuration of one Execute call.
type execConfig struct {
	executor    Executor
	executorSet bool
	onAnswer    func(Tuple)
	opts        Options
}

// ExecOption configures one Execute call. Options apply in order;
// WithExecOptions replaces the whole executor-level block, so pass it
// first when combining it with WithLimit or WithExecMaxBatch.
type ExecOption func(*execConfig)

// WithExecutor selects the execution strategy. The default is
// ExecutorFastFail — or ExecutorPipelined when OnAnswer is given without
// an explicit executor.
func WithExecutor(e Executor) ExecOption {
	return func(c *execConfig) { c.executor, c.executorSet = e, true }
}

// WithLimit caps the answers at n. The pipelined engine and the union
// runner stop the extraction once n answers exist — the paper's
// interactive early stop — and the batch strategies truncate the final
// answer set; either way the result is a sound subset carrying Truncated
// when answers were actually cut.
func WithLimit(n int) ExecOption {
	return func(c *execConfig) { c.opts.Limit = n }
}

// WithExecMaxBatch caps how many access bindings ride one source round
// trip for this execution, overriding the system default (see the
// system-level WithMaxBatch option for semantics).
func WithExecMaxBatch(n int) ExecOption {
	return func(c *execConfig) { c.opts.MaxBatch = n }
}

// OnAnswer streams answers to f. Under ExecutorPipelined (implied when no
// executor is chosen) f fires the moment an answer becomes derivable — for
// queries without negation; with negation, at completion — and under the
// batch strategies it fires for every answer once the run completes, so a
// sink works identically against every executor. For a UnionQuery, f
// observes each distinct union answer exactly once; calls are always
// serialized, never concurrent.
func OnAnswer(f func(Tuple)) ExecOption {
	return func(c *execConfig) { c.onAnswer = f }
}

// WithExecOptions sets the executor-level Options wholesale — the ablation
// switches (NoEarlyFailure, NoMetaCache), an explicit cross-query Cache,
// pipelined tuning (QueueLen, Parallelism), union parallelism
// (MaxConcurrent) and the rest. The escape hatch for everything the
// dedicated ExecOptions don't cover; it replaces the accumulated block, so
// order it before WithLimit / WithExecMaxBatch.
func WithExecOptions(o Options) ExecOption {
	return func(c *execConfig) { c.opts = o }
}

// resolveExec folds the options of one Execute call.
func resolveExec(options []ExecOption) execConfig {
	var cfg execConfig
	for _, o := range options {
		if o != nil {
			o(&cfg)
		}
	}
	if !cfg.executorSet && cfg.onAnswer != nil {
		cfg.executor = ExecutorPipelined
	}
	return cfg
}

// Execute runs the prepared query and returns all obtainable answers. The
// context cancels the extraction: once it is done no further probes are
// made and the run returns early with Truncated set, the answers already
// derived being a sound subset (nil means context.Background()). The
// context also carries the query's observability baggage down to the
// sources. By default the fast-failing ⊂-minimal strategy runs; options
// select another executor, cap the answers, or stream them:
//
//	res, _ := q.Execute(ctx)
//	res, _ := q.Execute(ctx, toorjah.WithLimit(10))
//	res, _ := q.Execute(ctx, toorjah.OnAnswer(func(t toorjah.Tuple) {
//	    fmt.Println(t.Strings())
//	}))
//
// The system's cross-query cache, batch bound and probe metrics apply
// unless the options carry their own.
func (q *Query) Execute(ctx context.Context, options ...ExecOption) (*Result, error) {
	return q.executeWith(ctx, q.sys.reg, resolveExec(options))
}

// executeWith runs one configured execution over an explicit registry (the
// union runner passes one pinned snapshot so every disjunct answers over
// the same data version).
func (q *Query) executeWith(ctx context.Context, reg *source.Registry, cfg execConfig) (*Result, error) {
	opts := q.sys.execOpts(cfg.opts)
	if cfg.executor == ExecutorNaive {
		// The naive algorithm runs on the original query and needs no plan,
		// so it executes even when the optimized strategies would refuse.
		res, err := exec.NaiveOpts(ctx, q.sys.sch, reg, q.pipeline.Query, q.pipeline.Typing, opts)
		return finishBatch(res, err, cfg)
	}
	if !q.Answerable() {
		return q.emptyResult(), nil
	}
	pl := q.activePlan()
	if cfg.executor == ExecutorPipelined {
		return exec.Pipelined(ctx, pl, reg, opts, cfg.onAnswer)
	}
	res, err := exec.FastFailingOpts(ctx, pl, reg, opts)
	return finishBatch(res, err, cfg)
}

// activePlan returns the plan this execution runs. On a non-adaptive system
// that is always the one built at Prepare. On an adaptive system
// (WithAdaptiveOrdering) the prepared linearization is checked against the
// current data epochs of the plan's relations; when any has advanced the
// plan is re-linearized from the optimized d-graph against the live row
// counts — same sources, same ⊂-minimality, possibly a different probe
// order — and kept until the data moves again. Executions already running
// keep the plan they started with.
func (q *Query) activePlan() *plan.Plan {
	if !q.sys.adaptive || q.pipeline.Plan == nil {
		return q.pipeline.Plan
	}
	q.planMu.Lock()
	defer q.planMu.Unlock()
	stale := false
	for name, epoch := range q.planEpochs {
		if q.sys.RelationEpoch(name) != epoch {
			stale = true
			break
		}
	}
	if !stale {
		return q.livePlan
	}
	p, err := plan.GenerateWith(q.pipeline.Opt, plan.OrderOptions{Sizes: q.sys.RelationSizes()})
	if err != nil {
		// The d-graph did not change, so regeneration cannot really fail;
		// if it somehow does, the last good linearization is still sound.
		return q.livePlan
	}
	q.livePlan = p
	q.planEpochs = q.snapshotEpochs()
	return p
}

// finishBatch applies the answer limit and the post-completion streaming
// callback to a batch executor's result. The batch strategies compute the
// full answer set regardless — the limit cannot save accesses there — so
// the cap is a truncation of the final relation.
func finishBatch(res *Result, err error, cfg execConfig) (*Result, error) {
	if err != nil || res == nil {
		return res, err
	}
	if lim := cfg.opts.Limit; lim > 0 && res.Answers.Len() > lim {
		capped := datalog.NewRelation(res.Answers.Name, res.Answers.Arity)
		for _, t := range res.Answers.Tuples()[:lim] {
			capped.Insert(t)
		}
		res.Answers = capped
		res.Truncated = true
	}
	if cfg.onAnswer != nil {
		for _, t := range res.Answers.Tuples() {
			cfg.onAnswer(t)
		}
	}
	return res, nil
}

// Execute runs every disjunct concurrently (bounded by MaxConcurrent) and
// unions the answers — the UCQ semantics of the paper's Section II. The
// same options as Query.Execute apply: WithExecutor selects the strategy
// every disjunct runs, OnAnswer observes each distinct union answer exactly
// once (serialized, the moment the first disjunct derives it), WithLimit
// caps the distinct union answers and cancels the remaining disjuncts once
// reached. One snapshot of the sources is pinned for the whole union, so
// all disjuncts answer over a single data version; per-relation statistics
// merge across disjuncts and Truncated/EarlyEmpty are OR-ed. A cancelled
// context yields a truncated sound subset, never an error.
func (u *UnionQuery) Execute(ctx context.Context, options ...ExecOption) (*Result, error) {
	cfg := resolveExec(options)
	pinned := u.sys.reg.Snapshot() // one data version for every disjunct
	runs := make([]exec.DisjunctRun, len(u.queries))
	for i, q := range u.queries {
		q := q
		runs[i] = func(dctx context.Context, emit func(datalog.Tuple)) (*Result, error) {
			dc := cfg
			if dc.executor == ExecutorPipelined {
				// Streaming disjuncts feed the union incrementally; the
				// per-disjunct limit is sound because the union needs at most
				// Limit distinct answers and a disjunct's own answers are
				// distinct.
				dc.onAnswer = emit
			} else {
				// Batch disjuncts enter the union through the runner's final
				// fold; a per-disjunct cap would mislabel complete unions as
				// truncated.
				dc.onAnswer = nil
				dc.opts.Limit = 0
			}
			return q.executeWith(dctx, pinned, dc)
		}
	}
	uopts := cfg.opts
	if uopts.MaxConcurrent == 0 {
		uopts.MaxConcurrent = u.MaxConcurrent
	}
	return exec.Union(ctx, u.name, u.arity, runs, uopts, cfg.onAnswer)
}
