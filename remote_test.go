package toorjah

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"toorjah/internal/remote"
	"toorjah/internal/schema"
	"toorjah/internal/source"
	"toorjah/internal/storage"
)

// startPeer serves the given relations of the quickstart schema as a
// federation peer, returning its URL and a counter of /probe round trips.
func startPeer(t *testing.T, rels map[string][]Row) (string, *atomic.Int64) {
	t.Helper()
	var lines []string
	full := schema.MustParse(`
r1^ioo(Artist, Nation, Year)
r2^oio(Title, Year, Artist)
r3^oo(Artist, Album)
`)
	for name := range rels {
		lines = append(lines, full.Relation(name).String())
	}
	sch := schema.MustParse(strings.Join(lines, "\n"))
	db := storage.NewDatabase()
	for name, rows := range rels {
		tab, err := db.Create(name, sch.Relation(name).Arity())
		if err != nil {
			t.Fatal(err)
		}
		tab.InsertAll(rows)
	}
	reg, err := source.FromDatabase(sch, db, 0)
	if err != nil {
		t.Fatal(err)
	}
	var probes atomic.Int64
	inner := remote.PeerMux(reg)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/probe" {
			probes.Add(1)
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts.URL, &probes
}

// federationRows is the quickstart data, split for the federation tests.
var federationRows = map[string][]Row{
	"r1": {{"modugno", "italy", "1928"}, {"madonna", "usa", "1958"}, {"dylan", "usa", "1941"}},
	"r2": {{"volare", "1958", "modugno"}, {"vogue", "1990", "madonna"}, {"hurricane", "1976", "dylan"}},
	"r3": {{"madonna", "like_a_virgin"}, {"dylan", "desire"}},
}

const federationQuery = "q(N) :- r1(A, N, Y1), r2(volare, Y2, A)"

// TestWithRemoteFederatedQuery: a query over a mix of local tables and two
// federation peers returns exactly the all-local answers and access counts.
func TestWithRemoteFederatedQuery(t *testing.T) {
	local := newExample1System(t)
	lq, err := local.Prepare(federationQuery)
	if err != nil {
		t.Fatal(err)
	}
	want, err := lq.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// r1 stays local; r2 and r3 live on two different peers.
	peerB, _ := startPeer(t, map[string][]Row{"r2": federationRows["r2"]})
	peerC, _ := startPeer(t, map[string][]Row{"r3": federationRows["r3"]})
	sys := NewSystem(local.Schema().Clone(),
		WithRemote(peerB+"=r2"),
		WithRemote(peerC),
		WithRemoteOptions(RemoteOptions{Timeout: 5 * time.Second}))
	if err := sys.BindRows("r1", federationRows["r1"]...); err != nil {
		t.Fatal(err)
	}
	q, err := sys.Prepare(federationQuery) // first Prepare attaches the peers
	if err != nil {
		t.Fatal(err)
	}
	got, err := q.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if g, w := strings.Join(got.SortedAnswers(), ";"), strings.Join(want.SortedAnswers(), ";"); g != w {
		t.Errorf("federated answers = %q, want %q", g, w)
	}
	for rel, wantSt := range want.Stats {
		if gotSt := got.Stats[rel]; gotSt.Accesses != wantSt.Accesses {
			t.Errorf("%s: federated accesses = %d, local = %d", rel, gotSt.Accesses, wantSt.Accesses)
		}
	}

	// Both peers are attached and reporting telemetry.
	peers := sys.RemotePeers()
	if len(peers) != 2 {
		t.Fatalf("attached peers = %d, want 2", len(peers))
	}
	rt := 0
	for _, p := range peers {
		for _, tel := range p.Telemetry() {
			rt += tel.RoundTrips
		}
	}
	if rt == 0 {
		t.Error("no remote round trips recorded by peer telemetry")
	}
}

// TestRemoteBatchingAmortizesRoundTrips: with batching on, the peer sees
// fewer /probe round trips than accesses; unbatched, one round trip per
// access — with identical answers and access counts.
func TestRemoteBatchingAmortizesRoundTrips(t *testing.T) {
	run := func(maxBatch int) (*Result, int64) {
		url, probes := startPeer(t, federationRows) // everything remote
		sys := NewSystem(schema.MustParse(`
r1^ioo(Artist, Nation, Year)
r2^oio(Title, Year, Artist)
r3^oo(Artist, Album)
`), WithRemote(url), WithMaxBatch(maxBatch))
		q, err := sys.Prepare(federationQuery)
		if err != nil {
			t.Fatal(err)
		}
		res, err := q.Execute(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res, probes.Load()
	}
	batched, batchedProbes := run(16)
	unbatched, unbatchedProbes := run(-1)
	if g, w := strings.Join(batched.SortedAnswers(), ";"), strings.Join(unbatched.SortedAnswers(), ";"); g != w {
		t.Errorf("answers differ: batched %q, unbatched %q", g, w)
	}
	if batched.TotalAccesses() != unbatched.TotalAccesses() {
		t.Errorf("batching changed accesses: %d vs %d", batched.TotalAccesses(), unbatched.TotalAccesses())
	}
	if unbatchedProbes != int64(unbatched.TotalAccesses()) {
		t.Errorf("unbatched: peer saw %d probes for %d accesses, want equal", unbatchedProbes, unbatched.TotalAccesses())
	}
	if batchedProbes > unbatchedProbes {
		t.Errorf("batched run made more HTTP round trips (%d) than unbatched (%d)", batchedProbes, unbatchedProbes)
	}
	if int64(batched.TotalBatches()) != batchedProbes {
		t.Errorf("Result reports %d round trips, peer saw %d", batched.TotalBatches(), batchedProbes)
	}
}

// TestRemoteWithCache: the querying node's cross-query cache absorbs repeat
// traffic — a second identical query reaches the peer zero times.
func TestRemoteWithCache(t *testing.T) {
	url, probes := startPeer(t, federationRows)
	sys := NewSystem(schema.MustParse(`
r1^ioo(Artist, Nation, Year)
r2^oio(Title, Year, Artist)
r3^oo(Artist, Album)
`), WithRemote(url), WithCache(CacheOptions{}))
	q, err := sys.Prepare(federationQuery)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := q.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	coldProbes := probes.Load()
	if coldProbes == 0 || cold.TotalAccesses() == 0 {
		t.Fatalf("cold run: %d probes, %d accesses, want > 0", coldProbes, cold.TotalAccesses())
	}
	warm, err := q.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if warm.TotalAccesses() != 0 {
		t.Errorf("warm run made %d accesses, want 0", warm.TotalAccesses())
	}
	if probes.Load() != coldProbes {
		t.Errorf("warm run reached the peer: %d -> %d probes", coldProbes, probes.Load())
	}
	if g, w := strings.Join(warm.SortedAnswers(), ";"), strings.Join(cold.SortedAnswers(), ";"); g != w {
		t.Errorf("warm answers = %q, want %q", g, w)
	}
}

// TestRemoteUCQ: a union of conjunctive queries streams over federated
// sources like over local ones.
func TestRemoteUCQ(t *testing.T) {
	const ucq = "q(N) :- r1(A, N, Y1), r2(volare, Y2, A)\nq(N) :- r1(A, N, Y), r3(A, like_a_virgin)"
	local := newExample1System(t)
	lu, err := local.PrepareUCQ(ucq)
	if err != nil {
		t.Fatal(err)
	}
	want, err := lu.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	url, _ := startPeer(t, federationRows)
	sys := NewSystem(local.Schema().Clone(), WithRemote(url))
	u, err := sys.PrepareUCQ(ucq)
	if err != nil {
		t.Fatal(err)
	}
	got, err := u.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if g, w := strings.Join(got.SortedAnswers(), ";"), strings.Join(want.SortedAnswers(), ";"); g != w {
		t.Errorf("federated UCQ = %q, want %q", g, w)
	}
	if got.TotalAccesses() != want.TotalAccesses() {
		t.Errorf("federated UCQ accesses = %d, local = %d", got.TotalAccesses(), want.TotalAccesses())
	}
}

// TestAttachRemoteErrors: bad specs and unreachable peers fail the attach
// with a useful error — at AttachRemote for the eager form, at Prepare for
// WithRemote — and a peer that comes up later succeeds on retry.
func TestAttachRemoteErrors(t *testing.T) {
	sys := NewSystem(schema.MustParse("r1^ioo(Artist, Nation, Year)"))
	if err := sys.AttachRemote(context.Background(), "=r1"); err == nil {
		t.Error("bad spec: want error")
	}
	if err := sys.AttachRemote(context.Background(), "http://127.0.0.1:1=r1"); err == nil {
		t.Error("unreachable peer: want error")
	}
	if got := len(sys.RemotePeers()); got != 0 {
		t.Errorf("failed attaches left %d peers", got)
	}

	// WithRemote surfaces the same failure at Prepare, and keeps the spec
	// pending: once the peer exists, the next Prepare succeeds.
	down := NewSystem(schema.MustParse("r2^oio(Title, Year, Artist)"), WithRemote("http://127.0.0.1:1"))
	if _, err := down.Prepare("q(T) :- r2(T, 1958, A)"); err == nil {
		t.Fatal("Prepare with a dead peer: want error")
	}
	url, _ := startPeer(t, map[string][]Row{"r2": federationRows["r2"]})
	recovered := NewSystem(schema.MustParse("r2^oio(Title, Year, Artist)"), WithRemote("http://127.0.0.1:1"))
	recovered.remoteMu.Lock()
	recovered.pendingRemote = []pendingAttach{{spec: url}} // the peer "came up" under a new address
	recovered.remoteMu.Unlock()
	q, err := recovered.Prepare("q(T) :- r2(T, 1958, A)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if g := strings.Join(res.SortedAnswers(), ";"); g != "volare" {
		t.Errorf("answers = %q, want volare", g)
	}
}

// TestBareAttachDoesNotShadowLocalData: a bare WithRemote attaches only the
// relations this node does not hold data for — the peer's /schema lists
// every declared relation, and rebinding an owned table behind a remote
// (possibly empty) source would silently change answers.
func TestBareAttachDoesNotShadowLocalData(t *testing.T) {
	// The peer declares r1 and r2 but only has r2 data; r1 (and r3, which
	// seeds the recursive plan) are local, owned, and different from the
	// peer's (empty) r1.
	url, probes := startPeer(t, map[string][]Row{
		"r1": nil, // declared, empty
		"r2": federationRows["r2"],
	})
	sys := NewSystem(schema.MustParse(`
r1^ioo(Artist, Nation, Year)
r2^oio(Title, Year, Artist)
r3^oo(Artist, Album)
`), WithRemote(url))
	if err := sys.BindRows("r1", federationRows["r1"]...); err != nil {
		t.Fatal(err)
	}
	if err := sys.BindRows("r3", federationRows["r3"]...); err != nil {
		t.Fatal(err)
	}
	q, err := sys.Prepare(federationQuery)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if g := strings.Join(res.SortedAnswers(), ";"); g != "italy" {
		t.Errorf("answers = %q, want italy (local r1 must not be shadowed by the peer's empty r1)", g)
	}
	if probes.Load() == 0 {
		t.Error("r2 was not sourced from the peer")
	}

	// Nothing left to attach is an error, not a silent no-op.
	full := NewSystem(schema.MustParse("r2^oio(Title, Year, Artist)"))
	if err := full.BindRows("r2", federationRows["r2"]...); err != nil {
		t.Fatal(err)
	}
	if err := full.AttachRemote(context.Background(), url); err == nil || !strings.Contains(err.Error(), "already locally bound") {
		t.Errorf("fully-owned bare attach: err = %v", err)
	}
}

// TestAttachRetryCooldown: a failing pending peer is re-dialed at most once
// per cooldown window; Prepares in between get the recorded error without
// network I/O.
func TestAttachRetryCooldown(t *testing.T) {
	var discoveries atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		discoveries.Add(1)
		http.Error(w, "not ready", http.StatusInternalServerError)
	}))
	defer ts.Close()
	sys := NewSystem(schema.MustParse("r2^oio(Title, Year, Artist)"), WithRemote(ts.URL))
	for i := 0; i < 3; i++ {
		if _, err := sys.Prepare("q(T) :- r2(T, 1958, A)"); err == nil {
			t.Fatalf("Prepare %d: err = nil against a broken peer", i)
		}
	}
	if got := discoveries.Load(); got != 1 {
		t.Errorf("broken peer dialed %d times in one cooldown window, want 1", got)
	}
}
