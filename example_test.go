package toorjah_test

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"strings"

	"toorjah"
	"toorjah/internal/remote"
	"toorjah/internal/schema"
	"toorjah/internal/source"
	"toorjah/internal/storage"
)

// ExampleNewSystem is the paper's Example 1: the query binds neither
// limited source directly, so the only way in is the free relation r3 —
// which the query never mentions — whose values unlock r1, whose values
// unlock r2, recursively.
func ExampleNewSystem() {
	sch, err := toorjah.ParseSchema(`
		r1^ioo(Artist, Nation, Year)
		r2^oio(Title, Year, Artist)
		r3^oo(Artist, Album)`)
	if err != nil {
		log.Fatal(err)
	}
	sys := toorjah.NewSystem(sch)
	sys.BindRows("r1", toorjah.Row{"modugno", "italy", "1958"})
	sys.BindRows("r2", toorjah.Row{"volare", "1958", "modugno"})
	sys.BindRows("r3", toorjah.Row{"modugno", "hits"})

	q, err := sys.Prepare("q(N) :- r1(A, N, Y1), r2(volare, Y2, A)")
	if err != nil {
		log.Fatal(err)
	}
	res, err := q.Execute(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("answers:", strings.Join(res.SortedAnswers(), " "))
	// Output:
	// answers: italy
}

// ExampleSystem_PrepareUCQ executes a union of conjunctive queries: one
// disjunct per line, disjuncts running concurrently, answers deduplicated
// across them.
func ExampleSystem_PrepareUCQ() {
	sch, err := toorjah.ParseSchema(`
		pub1^io(Paper, Person)
		pub2^io(Paper, Person)`)
	if err != nil {
		log.Fatal(err)
	}
	sys := toorjah.NewSystem(sch)
	sys.BindRows("pub1", toorjah.Row{"p1", "alice"}, toorjah.Row{"p2", "bob"})
	sys.BindRows("pub2", toorjah.Row{"p1", "alice"}, toorjah.Row{"p3", "carol"})

	u, err := sys.PrepareUCQ(`
		q(R) :- pub1(p1, R)
		q(R) :- pub2(p1, R)
		q(R) :- pub2(p3, R)`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := u.Execute(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("union answers:", strings.Join(res.SortedAnswers(), " "))
	fmt.Println("disjuncts:", len(u.Disjuncts()))
	// Output:
	// union answers: alice carol
	// disjuncts: 3
}

// ExampleSystem_AttachRemote federates a relation from a peer node: the
// peer serves the probe protocol (in production a toorjahd process; here
// an in-process test server), and this node attaches its relation as an
// ordinary source — cache, batching and executors compose unchanged.
func ExampleSystem_AttachRemote() {
	sch, err := toorjah.ParseSchema(`
		pub1^oo(Paper, Person)
		rev^io(Person, ConfName)`)
	if err != nil {
		log.Fatal(err)
	}

	// The peer owns rev — a limited source: the reviewer name must be bound
	// before it answers — and serves /probe + /schema (toorjahd's
	// endpoints). Probes of it ride the batched federation wire protocol.
	peerTab := storage.NewTable("rev", 2)
	peerTab.InsertAll([]storage.Row{{"alice", "icde"}})
	peerRel := schema.MustParse("rev^io(Person, ConfName)").Relations()[0]
	peerSrc, err := source.NewTableSource(peerRel, peerTab)
	if err != nil {
		log.Fatal(err)
	}
	peerReg := source.NewRegistry()
	peerReg.Bind(peerSrc)
	peer := httptest.NewServer(remote.PeerMux(peerReg))
	defer peer.Close()

	// This node owns pub1 locally (freely browsable) and sources rev from
	// the peer: extracted author names become the probe bindings.
	sys := toorjah.NewSystem(sch)
	sys.BindRows("pub1", toorjah.Row{"p1", "alice"}, toorjah.Row{"p2", "bob"})
	if err := sys.AttachRemote(context.Background(), peer.URL+"=rev"); err != nil {
		log.Fatal(err)
	}

	q, err := sys.Prepare("q(R, C) :- pub1(P, R), rev(R, C)")
	if err != nil {
		log.Fatal(err)
	}
	res, err := q.Execute(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("federated answers:", strings.Join(res.SortedAnswers(), " "))
	fmt.Println("peers attached:", len(sys.RemotePeers()))
	// Output:
	// federated answers: alice,icde
	// peers attached: 1
}

// ExampleSystem_Insert mutates a live relation between executions of one
// prepared query: each mutating batch advances the relation's epoch, and
// the next execution — same plan, same cache — answers over the new data.
func ExampleSystem_Insert() {
	sch, err := toorjah.ParseSchema(`rev^oo(Person, ConfName)`)
	if err != nil {
		log.Fatal(err)
	}
	sys := toorjah.NewSystem(sch, toorjah.WithCache(toorjah.CacheOptions{}))
	sys.BindRows("rev", toorjah.Row{"alice", "icde"})

	q, err := sys.Prepare("q(R) :- rev(R, icde)")
	if err != nil {
		log.Fatal(err)
	}
	run := func() {
		res, err := q.Execute(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("epoch %d: %s\n", sys.RelationEpoch("rev"),
			strings.Join(res.SortedAnswers(), " "))
	}
	run()
	if _, err := sys.Insert("rev", toorjah.Row{"bob", "icde"}); err != nil {
		log.Fatal(err)
	}
	run()
	if _, err := sys.Delete("rev", toorjah.Row{"alice", "icde"}); err != nil {
		log.Fatal(err)
	}
	run()
	// Output:
	// epoch 2: alice
	// epoch 3: alice bob
	// epoch 4: bob
}
