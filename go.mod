module toorjah

go 1.24
