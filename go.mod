module toorjah

go 1.23
