// Quickstart reproduces Example 1 of the paper: finding the nationality of
// the artist who wrote 'volare' when every source sits behind a web-form
// style access pattern.
//
// The schema:
//
//	r1^ioo(Artist, Nation, Year)  — artists; the artist name must be filled in
//	r2^oio(Title, Year, Artist)   — songs; the year must be filled in
//	r3^oo(Artist, Album)          — albums; freely browsable
//
// The query q(N) :- r1(A, N, Y1), r2(volare, Y2, A) has no binding for
// either limited source, so a traditional plan cannot run at all: the only
// way in is the free relation r3 — which the query never mentions — whose
// artist names unlock r1, whose years unlock r2, recursively, until no new
// value appears.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"toorjah"
)

func main() {
	sch, err := toorjah.ParseSchema(`
r1^ioo(Artist, Nation, Year)
r2^oio(Title, Year, Artist)
r3^oo(Artist, Album)
`)
	if err != nil {
		log.Fatal(err)
	}
	sys := toorjah.NewSystem(sch)
	must(sys.BindRows("r1",
		toorjah.Row{"modugno", "italy", "1928"},
		toorjah.Row{"madonna", "usa", "1958"},
		toorjah.Row{"dylan", "usa", "1941"},
	))
	must(sys.BindRows("r2",
		toorjah.Row{"volare", "1958", "modugno"},
		toorjah.Row{"vogue", "1990", "madonna"},
		toorjah.Row{"hurricane", "1976", "dylan"},
	))
	must(sys.BindRows("r3",
		toorjah.Row{"madonna", "like_a_virgin"},
		toorjah.Row{"dylan", "desire"},
	))

	q, err := sys.Prepare("q(N) :- r1(A, N, Y1), r2(volare, Y2, A)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query:     q(N) :- r1(A, N, Y1), r2(volare, Y2, A)")
	fmt.Println("relevant:  ", strings.Join(q.RelevantRelations(), ", "))
	fmt.Println("plan ordering and program:")
	fmt.Println(q.Plan())
	fmt.Println()

	res, err := q.Execute(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("answers:", res.SortedAnswers())
	fmt.Printf("accesses: %d (tuples extracted: %d)\n", res.TotalAccesses(), res.TotalTuples())
	for rel, st := range res.Stats {
		fmt.Printf("  %-4s %d accesses, %d rows\n", rel, st.Accesses, st.Tuples)
	}
	fmt.Println()
	fmt.Println("note: r3 is accessed although the query never mentions it —")
	fmt.Println("that is the essence of query answering under access limitations.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
