// Webcrawl demonstrates the streaming ("distillation") engine of Section V
// on a simulated web-integration scenario: online shops reachable only
// through search forms, with answers presented to the user the moment they
// are derived — long before the full extraction completes.
//
// The scenario: find prices of products whose reviews mention a given
// keyword. Sources:
//
//	catalog^oo(Product, Brand)          — a crawlable product catalog
//	shop^ioo(Product, Price, Seller)    — a shop form: product name required
//	reviews^iooo(Product, Reviewer, Score, Keyword) — review search: product required
//	similar^io(Product, Product)        — "customers also bought": product required
//
// Each source answers with a simulated network latency, so time-to-first-
// answer is visibly smaller than total time.
//
// Run with: go run ./examples/webcrawl
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"toorjah"
)

func main() {
	sch, err := toorjah.ParseSchema(`
catalog^oo(Product, Brand)
shop^ioo(Product, Price, Seller)
reviews^iooo(Product, Reviewer, Score, Keyword)
similar^ii(Product, Product)
`)
	if err != nil {
		log.Fatal(err)
	}
	sys := toorjah.NewSystem(sch)
	sys.Latency = 3 * time.Millisecond // every form submission costs a round trip

	products := []string{"laptop", "phone", "tablet", "camera", "drone", "watch", "printer", "monitor"}
	var catalog, shop, reviews, similar []toorjah.Row
	for i, p := range products {
		catalog = append(catalog, toorjah.Row{p, fmt.Sprintf("brand%d", i%3)})
		shop = append(shop, toorjah.Row{p, fmt.Sprintf("%d", 100+37*i), fmt.Sprintf("seller%d", i%4)})
		kw := "great"
		if i%2 == 0 {
			kw = "noisy"
		}
		reviews = append(reviews, toorjah.Row{p, fmt.Sprintf("user%d", i), fmt.Sprintf("%d", 1+i%5), kw})
		similar = append(similar, toorjah.Row{p, products[(i+1)%len(products)]})
	}
	must(sys.BindRows("catalog", catalog...))
	must(sys.BindRows("shop", shop...))
	must(sys.BindRows("reviews", reviews...))
	must(sys.BindRows("similar", similar...))

	q, err := sys.Prepare("q(P, Price) :- shop(P, Price, S), reviews(P, R, Sc, great)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query: prices of products whose reviews say 'great'")
	fmt.Println("relevant sources:", strings.Join(q.RelevantRelations(), ", "))
	fmt.Println("('similar' requires both products bound: pruned as irrelevant)")
	fmt.Println()

	start := time.Now()
	res, err := q.Execute(context.Background(),
		toorjah.WithExecOptions(toorjah.Options{Parallelism: 4}),
		toorjah.OnAnswer(func(t toorjah.Tuple) {
			v := t.Strings()
			fmt.Printf("  %-8s costs %-5s   (streamed after %s)\n",
				v[0], v[1], time.Since(start).Round(time.Millisecond))
		}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("%d answers; first after %s, all after %s; %d form submissions\n",
		res.Answers.Len(),
		res.TimeToFirst.Round(time.Millisecond),
		res.Elapsed.Round(time.Millisecond),
		res.TotalAccesses())
	fmt.Println("the user could have stopped reading after the first page —")
	fmt.Println("Toorjah presents answers as they arrive (paper Section V).")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
