// Randomized sweeps random schemata, queries and instances (the workload of
// the paper's Figs. 10 and 11) and reports per-query access savings of the
// optimized plan over the naive strategy, asserting on every run that both
// return identical answers.
//
// Run with: go run ./examples/randomized [-schemas 4] [-queries 8] [-seed 1]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"toorjah"
	"toorjah/internal/core"
	"toorjah/internal/exec"
	"toorjah/internal/gen"
	"toorjah/internal/source"
)

func main() {
	schemas := flag.Int("schemas", 4, "number of random schemata")
	queries := flag.Int("queries", 8, "queries per schema")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	cfg := gen.Fig10()
	totalNaive, totalOpt, ran := 0, 0, 0
	for si := 0; si < *schemas; si++ {
		g := gen.New(*seed+int64(si)*1000, cfg)
		sch := g.Schema()
		db := g.Instance(sch)
		reg, err := source.FromDatabase(sch, db, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("schema %d:\n%s\n", si+1, indent(sch.String()))
		for qi := 0; qi < *queries; qi++ {
			q, ok := g.Query(sch, fmt.Sprintf("q%d", qi))
			if !ok {
				continue
			}
			p, err := core.Prepare(sch, q)
			if err != nil || !p.Answerable() {
				continue
			}
			naive, err := exec.Naive(context.Background(), sch, reg, p.Query, p.Typing)
			if err != nil {
				log.Fatal(err)
			}
			opt, err := exec.FastFailing(context.Background(), p.Plan, reg)
			if err != nil {
				log.Fatal(err)
			}
			if !sameAnswers(naive, opt) {
				log.Fatalf("ANSWER MISMATCH on %s", q)
			}
			ran++
			na, oa := naive.TotalAccesses(), opt.TotalAccesses()
			totalNaive += na
			totalOpt += oa
			saved := 0.0
			if na > 0 {
				saved = 100 * (1 - float64(oa)/float64(na))
			}
			fmt.Printf("  %-64s naive %6d  opt %6d  saved %5.1f%%  answers %d\n",
				trim(q.String(), 64), na, oa, saved, opt.Answers.Len())
		}
	}
	fmt.Printf("\n%d queries: naive %d accesses, optimized %d (%.1f%% saved overall)\n",
		ran, totalNaive, totalOpt, 100*(1-float64(totalOpt)/float64(totalNaive)))
}

func sameAnswers(a, b *toorjah.Result) bool {
	sa, sb := a.AnswerSet(), b.AnswerSet()
	if len(sa) != len(sb) {
		return false
	}
	for k := range sa {
		if !sb[k] {
			return false
		}
	}
	return true
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
