// Liveingest demonstrates mutable versioned relations: a reviewer database
// that changes while queries run. Rows are inserted and deleted through the
// facade's live-data API (System.Insert / System.Delete) without rebinding
// sources or re-preparing queries, and a cross-query access cache stays
// exactly as fresh as the data — entries are keyed by each relation's
// epoch, so a mutation makes the stale extraction set unreachable at once
// while queries already in flight keep the consistent version they pinned.
//
// The scenario: conference reviewers are assigned (and withdraw) while a
// conflict-of-interest query runs repeatedly. Every answer set printed
// corresponds to one single epoch of the data, never a mix.
//
// Run with: go run ./examples/liveingest
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"toorjah"
)

func main() {
	sch, err := toorjah.ParseSchema(`
pub1^io(Paper, Person)
conf^ooo(Paper, ConfName, Year)
rev^ooi(Person, ConfName, Year)`)
	if err != nil {
		log.Fatal(err)
	}
	sys := toorjah.NewSystem(sch, toorjah.WithCache(toorjah.CacheOptions{}))
	sys.BindRows("pub1", toorjah.Row{"p1", "alice"}, toorjah.Row{"p2", "bob"})
	sys.BindRows("conf", toorjah.Row{"p1", "icde", "y2008"}, toorjah.Row{"p2", "icde", "y2008"})
	sys.BindRows("rev", toorjah.Row{"alice", "icde", "y2008"})

	q, err := sys.Prepare("q(R) :- pub1(P, R), conf(P, C, Y), rev(R, C, Y)")
	if err != nil {
		log.Fatal(err)
	}
	show := func(when string) {
		res, err := q.Execute(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s epoch(rev)=%d answers=[%s] accesses=%d\n",
			when, sys.RelationEpoch("rev"),
			strings.Join(res.SortedAnswers(), " "), res.TotalAccesses())
	}

	show("initially")
	show("again (cache-warm)") // zero accesses: every probe is cached

	// bob is assigned as a reviewer: one live batch, one epoch advance. The
	// warm plan sees the new row on its next execution — the cache entries
	// of the old epoch (including the cached "bob reviews nothing") no
	// longer serve.
	if _, err := sys.Insert("rev", toorjah.Row{"bob", "icde", "y2008"}); err != nil {
		log.Fatal(err)
	}
	show("after Insert(bob)")

	// alice withdraws; the same plan, the same cache, the new truth.
	if _, err := sys.Delete("rev", toorjah.Row{"alice", "icde", "y2008"}); err != nil {
		log.Fatal(err)
	}
	show("after Delete(alice)")

	// Bulk ingestion parses the same CSV dialect the loader uses.
	n, err := sys.LoadCSV("rev", strings.NewReader("carol,icde,y2008\ndave,icde,y2008\n"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LoadCSV added %d rows\n", n)
	show("after LoadCSV")

	fmt.Println()
	fmt.Println("data freshness (what toorjahd serves as /stats \"data\"):")
	for name, info := range sys.DataInfo() {
		fmt.Printf("  %-5s epoch=%d rows=%d\n", name, info.Epoch, info.Rows)
	}
}
