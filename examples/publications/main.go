// Publications runs the paper's first experimental series (Section V,
// Fig. 6): the fixed publication schema with synthetic data and the three
// test queries q1–q3, comparing the naive strategy of Fig. 1 against the
// optimized ⊂-minimal plan relation by relation.
//
// Run with: go run ./examples/publications [-tuples 400] [-seed 7]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"

	"toorjah"
	"toorjah/internal/gen"
	"toorjah/internal/storage"
)

func main() {
	tuples := flag.Int("tuples", 400, "tuples per relation")
	seed := flag.Int64("seed", 7, "data seed")
	flag.Parse()

	cfg := gen.DefaultPublication()
	cfg.Tuples = *tuples
	schRaw, db := gen.Publication(*seed, cfg)
	sch, err := toorjah.ParseSchema(gen.PublicationSchemaText)
	if err != nil {
		log.Fatal(err)
	}
	sys := toorjah.NewSystem(sch)
	for _, rel := range schRaw.Relations() {
		tab := db.Table(rel.Name)
		if tab == nil {
			tab = storage.NewTable(rel.Name, rel.Arity())
		}
		if err := sys.BindTable(rel.Name, tab); err != nil {
			log.Fatal(err)
		}
	}

	for _, qs := range gen.PublicationQueries {
		q, err := sys.Prepare(qs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("════════════════════════════════════════════════════════")
		fmt.Println(qs)
		fmt.Println("  irrelevant (never accessed by the optimized plan):",
			strings.Join(q.IrrelevantRelations(), ", "))

		naive, err := q.Execute(context.Background(), toorjah.WithExecutor(toorjah.ExecutorNaive))
		if err != nil {
			log.Fatal(err)
		}
		opt, err := q.Execute(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s %12s %12s\n", "relation", "naive acc.", "opt. acc.")
		for _, rel := range sch.Relations() {
			na := naive.Stats[rel.Name].Accesses
			oa, touched := "", ""
			if st, ok := opt.Stats[rel.Name]; ok {
				oa = fmt.Sprint(st.Accesses)
			} else {
				touched = " (pruned)"
			}
			fmt.Printf("  %-10s %12d %12s%s\n", rel.Name, na, oa, touched)
		}
		fmt.Printf("  total: naive %d, optimized %d (%.1f%% saved); answers %d == %d\n",
			naive.TotalAccesses(), opt.TotalAccesses(),
			100*(1-float64(opt.TotalAccesses())/float64(naive.TotalAccesses())),
			naive.Answers.Len(), opt.Answers.Len())
	}
}
