// Negation demonstrates the safe-negation extension (the paper's conclusion
// points to UCQs with safe negation as the query class the technique
// extends to): reviewers of a conference who have NOT published at that
// same conference — a conflict-of-interest check over access-limited
// sources.
//
// The negated atom published(R, C) never provides bindings; it is probed
// only with the reviewer names the positive atom justifies and checked
// against complete caches, which keeps the semantics exact despite the
// access limitations.
//
// Run with: go run ./examples/negation
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"toorjah"
)

func main() {
	sch, err := toorjah.ParseSchema(`
reviewers^oo(Person, ConfName)
published^io(Person, ConfName)
`)
	if err != nil {
		log.Fatal(err)
	}
	sys := toorjah.NewSystem(sch)
	must(sys.BindRows("reviewers",
		toorjah.Row{"alice", "icde"},
		toorjah.Row{"bob", "icde"},
		toorjah.Row{"carol", "vldb"},
	))
	must(sys.BindRows("published",
		toorjah.Row{"bob", "icde"},   // bob has an ICDE paper: conflicted
		toorjah.Row{"alice", "vldb"}, // alice published only at VLDB
		toorjah.Row{"carol", "vldb"}, // carol is conflicted at VLDB
	))

	q, err := sys.Prepare("clean(R, C) :- reviewers(R, C), not published(R, C)")
	if err != nil {
		log.Fatal(err)
	}
	res, err := q.Execute(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reviewers with no paper at their own conference:")
	for _, a := range res.SortedAnswers() {
		fmt.Println("  " + strings.ReplaceAll(a, ",", " @ "))
	}
	fmt.Printf("(%d accesses; published probed only with reviewer names the positive part justified)\n",
		res.TotalAccesses())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
