package toorjah

import (
	"context"
	"fmt"
	"testing"
)

// skewedSystem builds the adaptive-ordering demo instance: seed feeds a
// key into two order-equivalent joined relations, big (many rows) and
// small (empty), so the only thing ordering can change is how early the
// fast-failing executor notices the join is empty. The query lists big
// before small, so the static tie-break (equal join scores, source-ID
// order) probes big first; live sizes reverse that.
func skewedSystem(t *testing.T, opts ...SystemOption) *System {
	t.Helper()
	sch, err := ParseSchema(`
		seed^o(A)
		big^io(A, B)
		small^io(A, C)`)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(sch, opts...)
	var seeds, bigs []Row
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%d", i)
		seeds = append(seeds, Row{k})
		for j := 0; j < 10; j++ {
			bigs = append(bigs, Row{k, fmt.Sprintf("v%d_%d", i, j)})
		}
	}
	if err := sys.BindRows("seed", seeds...); err != nil {
		t.Fatal(err)
	}
	if err := sys.BindRows("big", bigs...); err != nil {
		t.Fatal(err)
	}
	if err := sys.BindRows("small"); err != nil {
		t.Fatal(err)
	}
	return sys
}

const skewedQuery = "q(B, C) :- big(X, B), small(X, C), seed(X)"

// TestAdaptiveOrderingSavesAccesses is the acceptance property of
// WithAdaptiveOrdering: on the skewed instance the adaptive system probes
// the empty small relation before the fat big one, fails the join early,
// and performs strictly fewer accesses than the static system — with
// identical (empty) answers.
func TestAdaptiveOrderingSavesAccesses(t *testing.T) {
	ctx := context.Background()

	static := skewedSystem(t)
	sq, err := static.Prepare(skewedQuery)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := sq.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}

	adaptive := skewedSystem(t, WithAdaptiveOrdering())
	if !adaptive.AdaptiveOrdering() {
		t.Fatal("AdaptiveOrdering() = false after WithAdaptiveOrdering")
	}
	aq, err := adaptive.Prepare(skewedQuery)
	if err != nil {
		t.Fatal(err)
	}
	ares, err := aq.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if sres.Answers.Len() != ares.Answers.Len() {
		t.Fatalf("answers differ: static %d, adaptive %d", sres.Answers.Len(), ares.Answers.Len())
	}
	if ares.TotalAccesses() >= sres.TotalAccesses() {
		t.Errorf("adaptive accesses = %d, want < static %d",
			ares.TotalAccesses(), sres.TotalAccesses())
	}
}

// TestAdaptiveOrderingReplansOnEpochAdvance mutates the data under a
// prepared query and checks the next execution re-linearizes: once small
// outgrows big, the adaptive plan goes back to probing big first.
func TestAdaptiveOrderingReplansOnEpochAdvance(t *testing.T) {
	ctx := context.Background()
	sys := skewedSystem(t, WithAdaptiveOrdering())
	q, err := sys.Prepare(skewedQuery)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	order := func() []string {
		var names []string
		for _, g := range q.Plan().Groups {
			for _, s := range g {
				names = append(names, s.Rel.Name)
			}
		}
		return names
	}
	pos := func(names []string, rel string) int {
		for i, n := range names {
			if n == rel {
				return i
			}
		}
		t.Fatalf("relation %s not in plan order %v", rel, names)
		return -1
	}
	before := order()
	if pos(before, "small") > pos(before, "big") {
		t.Fatalf("initial adaptive order %v probes big before empty small", before)
	}

	// Grow small past big: 10x big's rows, one ingest batch, one epoch.
	var rows []Row
	for i := 0; i < 1100; i++ {
		rows = append(rows, Row{fmt.Sprintf("x%d", i), "c"})
	}
	if _, err := sys.Insert("small", rows...); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	after := order()
	if pos(after, "big") > pos(after, "small") {
		t.Errorf("after ingest, adaptive order %v still probes small (now %d rows) before big", after, len(rows))
	}
}
