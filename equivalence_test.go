package toorjah

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"toorjah/internal/cache"
	"toorjah/internal/core"
	"toorjah/internal/cq"
	"toorjah/internal/exec"
	"toorjah/internal/gen"
	"toorjah/internal/schema"
	"toorjah/internal/source"
	"toorjah/internal/storage"
)

// stringReference is the outcome of the string-space oracle: the sorted
// comma-joined answer tuples and the set of accesses made (source.Access
// keys), which for the naive algorithm is a pure function of the instance —
// independent of probing order, batching, or value representation.
type stringReference struct {
	answers  []string
	accesses map[string]bool
}

// runStringReference is an independent re-implementation of the naive
// algorithm (Fig. 1) in pure string space: it probes sources one binding at
// a time through the legacy string Access API, deduplicates accesses on
// NUL-joined string keys, caches extracted rows as strings, and evaluates
// the query with a backtracking join over string rows. No symbol ID is
// ever touched. It is the oracle of TestStringSymbolEngineEquivalence:
// whatever the interned integer-tuple engine answers, this engine must
// answer too, with the identical access set.
func runStringReference(t *testing.T, sch *schema.Schema, reg *source.Registry, q *cq.CQ, ty *cq.Typing) stringReference {
	t.Helper()

	known := map[schema.Domain]map[string]bool{}
	addValue := func(d schema.Domain, v string) {
		m := known[d]
		if m == nil {
			m = map[string]bool{}
			known[d] = m
		}
		m[v] = true
	}
	for c, d := range ty.ConstDomain {
		addValue(d, c)
	}

	rows := map[string][][]string{}
	seenRow := map[string]bool{}
	accesses := map[string]bool{}

	for changed := true; changed; {
		changed = false
		for _, rel := range sch.Relations() {
			w := reg.Source(rel.Name)
			if w == nil {
				t.Fatalf("no source bound for %s", rel.Name)
			}
			inputs := rel.InputPositions()
			pools := make([][]string, len(inputs))
			empty := false
			for i, d := range rel.InputDomains() {
				for v := range known[d] {
					pools[i] = append(pools[i], v)
				}
				sort.Strings(pools[i])
				if len(pools[i]) == 0 {
					empty = true
					break
				}
			}
			if empty {
				continue
			}
			binding := make([]string, len(inputs))
			var walk func(i int)
			walk = func(i int) {
				if i == len(inputs) {
					key := source.Access{Relation: rel.Name, Binding: binding}.Key()
					if accesses[key] {
						return
					}
					accesses[key] = true
					changed = true
					extracted, err := w.Access(binding)
					if err != nil {
						t.Fatalf("%s%v: %v", rel.Name, binding, err)
					}
					for _, row := range extracted {
						rk := rel.Name + "\x00" + row.Key()
						if seenRow[rk] {
							continue
						}
						seenRow[rk] = true
						cp := append([]string(nil), row...)
						rows[rel.Name] = append(rows[rel.Name], cp)
						for p, v := range cp {
							addValue(rel.Domains[p], v)
						}
					}
					return
				}
				for _, v := range pools[i] {
					binding[i] = v
					walk(i + 1)
				}
			}
			walk(0)
		}
	}

	// Final evaluation: backtracking join of the positive body over the
	// extracted string rows, then safe-negation checks, then head
	// projection — all on strings.
	env := map[string]string{}
	answerSet := map[string]bool{}
	resolve := func(tm cq.Term) string {
		if tm.IsVar {
			return env[tm.Name]
		}
		return tm.Name
	}
	negMatches := func(a cq.Atom, row []string) bool {
		for p, tm := range a.Args {
			if resolve(tm) != row[p] {
				return false
			}
		}
		return true
	}
	var join func(i int)
	join = func(i int) {
		if i == len(q.Body) {
			for _, na := range q.Negated {
				for _, row := range rows[na.Pred] {
					if negMatches(na, row) {
						return
					}
				}
			}
			out := make([]string, len(q.Head))
			for hi, tm := range q.Head {
				out[hi] = resolve(tm)
			}
			answerSet[strings.Join(out, ",")] = true
			return
		}
		a := q.Body[i]
		for _, row := range rows[a.Pred] {
			ok := true
			var bound []string
			for p, tm := range a.Args {
				if tm.IsVar {
					if v, has := env[tm.Name]; has {
						if v != row[p] {
							ok = false
							break
						}
					} else {
						env[tm.Name] = row[p]
						bound = append(bound, tm.Name)
					}
				} else if tm.Name != row[p] {
					ok = false
					break
				}
			}
			if ok {
				join(i + 1)
			}
			for _, n := range bound {
				delete(env, n)
			}
		}
	}
	join(0)

	answers := make([]string, 0, len(answerSet))
	for a := range answerSet {
		answers = append(answers, a)
	}
	sort.Strings(answers)
	return stringReference{answers: answers, accesses: accesses}
}

// mutateInstance advances the data to a new epoch: a handful of fresh rows
// (with both recycled and never-interned values) into every relation, so
// epoch-keyed caches and persistent snapshot indexes are exercised against
// genuinely changed contents.
func mutateInstance(sch *schema.Schema, db *storage.Database, seed int64) {
	for ri, rel := range sch.Relations() {
		tab := db.Table(rel.Name)
		existing := tab.Rows()
		for n := 0; n < 2; n++ {
			row := make(storage.Row, rel.Arity())
			for p := range row {
				if len(existing) > 0 && (n+p)%2 == 0 {
					row[p] = existing[(n+p)%len(existing)][p]
				} else {
					row[p] = fmt.Sprintf("fresh_%d_%d_%d_%d", seed, ri, n, p)
				}
			}
			tab.Insert(row)
		}
		if len(existing) > 1 {
			tab.Delete(existing[0])
		}
	}
}

// TestStringSymbolEngineEquivalence is the cross-representation acceptance
// property of the integer-tuple hot path: on randomly generated schemata,
// queries and instances, an independent string-space implementation of the
// naive algorithm and the interned symbol engine produce identical answers
// and — for the naive executor — the identical access set, across every
// executor × cross-query cache × batching combination, and again after the
// instance advances to a new data epoch. Run under -race this doubles as
// the concurrency check of the pipelined engine over shared symbol tables
// and caches.
func TestStringSymbolEngineEquivalence(t *testing.T) {
	cfg := gen.Scaled()
	cfg.MaxTuples = 80
	cfg.MaxDomainValues = 25
	seeds := int64(14)
	if testing.Short() {
		seeds = 6
	}
	ctx := context.Background()
	ran := 0
	for seed := int64(500); seed < 500+seeds; seed++ {
		g := gen.New(seed, cfg)
		sch := g.Schema()
		q, ok := g.Query(sch, "q")
		if !ok {
			continue
		}
		db := g.Instance(sch)
		reg, err := source.FromDatabase(sch, db, 0)
		if err != nil {
			t.Fatal(err)
		}
		p, err := core.Prepare(sch, q)
		if err != nil {
			t.Errorf("seed %d: prepare %s: %v", seed, q, err)
			continue
		}
		if !p.Answerable() {
			continue
		}
		ran++

		// One cross-query cache lives across both epochs of this workload:
		// after the mutation its entries are stale and only epoch-keying
		// keeps them from leaking into the answers.
		crossCache := cache.New(cache.Options{})

		for epoch := 0; epoch < 2; epoch++ {
			if epoch == 1 {
				mutateInstance(sch, db, seed)
			}
			ref := runStringReference(t, sch, reg, p.Query, p.Typing)
			want := strings.Join(ref.answers, ";")

			// The symbol-engine naive run must make exactly the reference's
			// accesses — same set, same count (neither ever repeats one).
			counted, counters := reg.Counted(true)
			nres, err := exec.Naive(ctx, sch, counted, p.Query, p.Typing)
			if err != nil {
				t.Fatalf("seed %d epoch %d: naive: %v", seed, epoch, err)
			}
			if got := strings.Join(nres.SortedAnswers(), ";"); got != want {
				t.Errorf("seed %d epoch %d: naive answers = [%s], want [%s]\nschema:\n%s",
					seed, epoch, got, want, sch)
			}
			symSet := map[string]bool{}
			for _, c := range counters {
				for _, a := range c.Log() {
					symSet[a.Key()] = true
				}
			}
			for k := range ref.accesses {
				if !symSet[k] {
					t.Errorf("seed %d epoch %d: string engine access %q never made by symbol engine", seed, epoch, k)
				}
			}
			for k := range symSet {
				if !ref.accesses[k] {
					t.Errorf("seed %d epoch %d: symbol engine access %q never made by string engine", seed, epoch, k)
				}
			}
			if nres.TotalAccesses() != len(ref.accesses) {
				t.Errorf("seed %d epoch %d: naive made %d accesses, string engine %d",
					seed, epoch, nres.TotalAccesses(), len(ref.accesses))
			}

			// Full matrix: every executor × cache × batching returns the
			// reference answers; with the cache off, each executor's access
			// count is invariant under batching (a batch of N is N accesses),
			// and the optimized executors never exceed the naive count.
			executors := []struct {
				name string
				run  func(opts exec.Options) (*exec.Result, error)
			}{
				{"naive", func(opts exec.Options) (*exec.Result, error) {
					return exec.NaiveOpts(ctx, sch, reg, p.Query, p.Typing, opts)
				}},
				{"fastfail", func(opts exec.Options) (*exec.Result, error) {
					return exec.FastFailingOpts(ctx, p.Plan, reg, opts)
				}},
				{"pipelined", func(opts exec.Options) (*exec.Result, error) {
					return exec.Pipelined(ctx, p.Plan, reg, opts, nil)
				}},
			}
			for _, ex := range executors {
				uncachedCount := -1
				for _, cc := range []*cache.Cache{nil, crossCache} {
					for _, mb := range []int{-1, 1, 16} {
						res, err := ex.run(exec.Options{MaxBatch: mb, Cache: cc})
						if err != nil {
							t.Fatalf("seed %d epoch %d: %s cache=%v mb=%d: %v", seed, epoch, ex.name, cc != nil, mb, err)
						}
						if got := strings.Join(res.SortedAnswers(), ";"); got != want {
							t.Errorf("seed %d epoch %d: %s cache=%v mb=%d answers = [%s], want [%s]",
								seed, epoch, ex.name, cc != nil, mb, got, want)
						}
						if cc == nil {
							if uncachedCount == -1 {
								uncachedCount = res.TotalAccesses()
							} else if res.TotalAccesses() != uncachedCount {
								t.Errorf("seed %d epoch %d: %s access count varies with batching: %d vs %d",
									seed, epoch, ex.name, res.TotalAccesses(), uncachedCount)
							}
							if res.TotalAccesses() > len(ref.accesses) {
								t.Errorf("seed %d epoch %d: %s made %d accesses > naive bound %d",
									seed, epoch, ex.name, res.TotalAccesses(), len(ref.accesses))
							}
						}
					}
				}
			}
		}
	}
	if ran < 7 && !testing.Short() {
		t.Errorf("only %d random workloads ran; generator too restrictive", ran)
	}
}
