package toorjah

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"toorjah/internal/storage"
)

// TestCSVEndToEnd exercises the cmd/toorjah data path: relations loaded
// from per-relation CSV files, bound as limited sources, queried with the
// optimized plan.
func TestCSVEndToEnd(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"pub1.csv": "p1,alice\np2,bob\n",
		"conf.csv": "p1,icde,y2008\np2,vldb,y2007\n",
		"rev.csv":  "alice,icde,y2008\n",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	sch, err := ParseSchema(`
pub1^io(Paper, Person)
conf^ooo(Paper, ConfName, Year)
rev^ooi(Person, ConfName, Year)
`)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(sch)
	for _, rel := range sch.Relations() {
		f, err := os.Open(filepath.Join(dir, rel.Name+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		tab, err := storage.ReadCSV(rel.Name, rel.Arity(), f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.BindTable(rel.Name, tab); err != nil {
			t.Fatal(err)
		}
	}
	q, err := sys.Prepare("q(R) :- pub1(P, R), conf(P, C, Y), rev(R, C, Y)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(res.SortedAnswers(), ";"); got != "alice" {
		t.Errorf("answers = %s, want alice", got)
	}
	if !q.IsConnectionQuery() {
		t.Error("q1 is a connection query (all domains share one term)")
	}
	if !q.Orderable() {
		t.Error("q1 is orderable (conf first)")
	}
}

// TestAnalysisAccessors covers the paper-classification accessors on the
// motivating query: q of Example 1 is neither orderable nor ∀-minimal-free;
// q3 of the evaluation is not a connection query.
func TestAnalysisAccessors(t *testing.T) {
	sys := musicSystem(t)
	q, err := sys.Prepare("q(N) :- r1(A, N, Y1), r2(volare, Y2, A)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Orderable() {
		t.Error("Example 1 requires recursion: not orderable")
	}
	if q.IsConnectionQuery() {
		t.Error("two Year variables: not a connection query")
	}

	sch, _ := ParseSchema(`
pub1^io(Paper, Person)
pub2^oo(Paper, Person)
conf^ooo(Paper, ConfName, Year)
rev^ooi(Person, ConfName, Year)
sub^oi(Paper, Person)
rev_icde^iio(Person, Paper, Eval)
`)
	sys2 := NewSystem(sch)
	q3, err := sys2.Prepare("q3(R) :- rev_icde(R, S, acc), sub(S, A), pub1(P, R), pub1(P, A), rev(R, icde, y2008), conf(P, icde, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if q3.IsConnectionQuery() {
		t.Error("the paper states q3 is not a connection query")
	}
}

// TestForAllMinimalAccessor: unique chain ordering implies ∀-minimality.
func TestForAllMinimalAccessor(t *testing.T) {
	sch, _ := ParseSchema(`
r1^io(A, B)
r2^io(B, C)
r3^io(C, A)
`)
	sys := NewSystem(sch)
	q, err := sys.Prepare("q(C) :- r1(a, B), r2(B, C)")
	if err != nil {
		t.Fatal(err)
	}
	if !q.ForAllMinimal() {
		t.Error("Example 7's unique ordering makes the plan ∀-minimal")
	}

	sch2, _ := ParseSchema("r1^o(A)\nr2^o(B)")
	sys2 := NewSystem(sch2)
	q2, err := sys2.Prepare("q(X) :- r1(X), r2(Y)")
	if err != nil {
		t.Fatal(err)
	}
	if q2.ForAllMinimal() {
		t.Error("Example 6 admits no ∀-minimal plan")
	}
}
