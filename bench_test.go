package toorjah

// Benchmarks regenerating the paper's evaluation (one benchmark per table or
// figure), plus ablations of the individual optimizations. Access counts are
// reported as custom metrics next to wall time, since the paper's cost model
// is the number of accesses:
//
//	go test -bench=. -benchmem
//
// BenchmarkFig6_*     — paper Fig. 6 (publication schema, q1–q3)
// BenchmarkFig10      — paper Fig. 10 (random-workload aggregate)
// BenchmarkFig11_*    — paper Fig. 11 (execution time by query size)
// BenchmarkAblation_* — each optimization toggled off
// BenchmarkPlanning_* — cost of d-graph construction, GFP and plan generation

import (
	"context"
	"fmt"
	"testing"
	"time"

	"toorjah/internal/cache"
	"toorjah/internal/core"
	"toorjah/internal/cq"
	"toorjah/internal/exec"
	"toorjah/internal/experiments"
	"toorjah/internal/gen"
	"toorjah/internal/plan"
	"toorjah/internal/schema"
	"toorjah/internal/source"
)

// benchPub prepares the Fig. 6 workload once per benchmark.
func benchPub(b *testing.B, tuples int) (*schema.Schema, *source.Registry) {
	b.Helper()
	cfg := gen.DefaultPublication()
	cfg.Tuples = tuples
	sch, db := gen.Publication(1, cfg)
	reg, err := source.FromDatabase(sch, db, 0)
	if err != nil {
		b.Fatal(err)
	}
	return sch, reg
}

func benchFig6Query(b *testing.B, queryIdx int, naive bool) {
	sch, reg := benchPub(b, 300)
	q, err := cq.Parse(gen.PublicationQueries[queryIdx])
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.Prepare(sch, q)
	if err != nil {
		b.Fatal(err)
	}
	var accesses int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var r *exec.Result
		if naive {
			r, err = exec.Naive(context.Background(), sch, reg, p.Query, p.Typing)
		} else {
			r, err = exec.FastFailing(context.Background(), p.Plan, reg)
		}
		if err != nil {
			b.Fatal(err)
		}
		accesses = r.TotalAccesses()
	}
	b.ReportMetric(float64(accesses), "accesses")
}

func BenchmarkFig6_Q1_Naive(b *testing.B)     { benchFig6Query(b, 0, true) }
func BenchmarkFig6_Q1_Optimized(b *testing.B) { benchFig6Query(b, 0, false) }
func BenchmarkFig6_Q2_Naive(b *testing.B)     { benchFig6Query(b, 1, true) }
func BenchmarkFig6_Q2_Optimized(b *testing.B) { benchFig6Query(b, 1, false) }
func BenchmarkFig6_Q3_Naive(b *testing.B)     { benchFig6Query(b, 2, true) }
func BenchmarkFig6_Q3_Optimized(b *testing.B) { benchFig6Query(b, 2, false) }

// BenchmarkFig10 runs one slice of the random-workload aggregate per
// iteration and reports the average saved-access fraction.
func BenchmarkFig10(b *testing.B) {
	var saved float64
	for i := 0; i < b.N; i++ {
		st, err := experiments.RunFig10(context.Background(), int64(i+1), 2, 6, gen.Fig10())
		if err != nil {
			b.Fatal(err)
		}
		saved = st.Saved.Avg()
	}
	b.ReportMetric(100*saved, "%saved")
}

// benchFig11 measures one atom-count bucket of the Fig. 11 experiment.
func benchFig11(b *testing.B, atoms int) {
	cfg := gen.Fig10()
	cfg.MinAtoms, cfg.MaxAtoms = atoms, atoms
	var naiveMS, optMS float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig11(context.Background(), int64(i+1), 2, 5, 200*time.Microsecond, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			naiveMS = float64(r.NaiveTime.Microseconds()) / 1000
			optMS = float64(r.OptTime.Microseconds()) / 1000
		}
	}
	b.ReportMetric(naiveMS, "naive-ms")
	b.ReportMetric(optMS, "opt-ms")
}

func BenchmarkFig11_Atoms2(b *testing.B) { benchFig11(b, 2) }
func BenchmarkFig11_Atoms3(b *testing.B) { benchFig11(b, 3) }
func BenchmarkFig11_Atoms4(b *testing.B) { benchFig11(b, 4) }
func BenchmarkFig11_Atoms5(b *testing.B) { benchFig11(b, 5) }
func BenchmarkFig11_Atoms6(b *testing.B) { benchFig11(b, 6) }

// Ablations: q2 of the publication workload with one optimization disabled
// at a time (the design choices DESIGN.md calls out).
func benchAblation(b *testing.B, prepare core.Options, run exec.Options) {
	sch, reg := benchPub(b, 300)
	q, err := cq.Parse(gen.PublicationQueries[1])
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.PrepareOpts(sch, q, prepare)
	if err != nil {
		b.Fatal(err)
	}
	var accesses int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := exec.FastFailingOpts(context.Background(), p.Plan, reg, run)
		if err != nil {
			b.Fatal(err)
		}
		accesses = r.TotalAccesses()
	}
	b.ReportMetric(float64(accesses), "accesses")
}

func BenchmarkAblation_Full(b *testing.B) {
	benchAblation(b, core.Options{}, exec.Options{})
}

func BenchmarkAblation_NoPruning(b *testing.B) {
	benchAblation(b, core.Options{SkipPruning: true}, exec.Options{})
}

func BenchmarkAblation_NoMetaCache(b *testing.B) {
	benchAblation(b, core.Options{}, exec.Options{NoMetaCache: true})
}

func BenchmarkAblation_NoEarlyFailure(b *testing.B) {
	benchAblation(b, core.Options{}, exec.Options{NoEarlyFailure: true})
}

func BenchmarkAblation_NoOrderingHeuristic(b *testing.B) {
	benchAblation(b, core.Options{Order: plan.OrderOptions{NoHeuristic: true}}, exec.Options{})
}

func BenchmarkAblation_SizeStatistics(b *testing.B) {
	// The paper's §IV suggestion: with table statistics available, place
	// small tables first compatibly with the ordering.
	sizes := map[string]int{"pub1": 300, "pub2": 300, "conf": 300, "rev": 300, "sub": 300, "rev_icde": 300}
	benchAblation(b, core.Options{Order: plan.OrderOptions{Sizes: sizes}}, exec.Options{})
}

// BenchmarkPipelined measures the parallel engine against the sequential
// fast-failing strategy under per-access latency, reporting time-to-first-
// answer (the paper's pagination argument).
func BenchmarkPipelined(b *testing.B) {
	cfg := gen.SmallPublication()
	sch, db := gen.Publication(1, cfg)
	reg, err := source.FromDatabase(sch, db, 100*time.Microsecond)
	if err != nil {
		b.Fatal(err)
	}
	q, err := cq.Parse(gen.PublicationQueries[0])
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.Prepare(sch, q)
	if err != nil {
		b.Fatal(err)
	}
	var first, total time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := exec.Pipelined(context.Background(), p.Plan, reg, exec.Options{Parallelism: 4}, nil)
		if err != nil {
			b.Fatal(err)
		}
		first, total = r.TimeToFirst, r.Elapsed
	}
	b.ReportMetric(float64(first.Microseconds()), "first-answer-µs")
	b.ReportMetric(float64(total.Microseconds()), "total-µs")
}

func BenchmarkSequentialWithLatency(b *testing.B) {
	cfg := gen.SmallPublication()
	sch, db := gen.Publication(1, cfg)
	reg, err := source.FromDatabase(sch, db, 100*time.Microsecond)
	if err != nil {
		b.Fatal(err)
	}
	q, err := cq.Parse(gen.PublicationQueries[0])
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.Prepare(sch, q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.FastFailing(context.Background(), p.Plan, reg); err != nil {
			b.Fatal(err)
		}
	}
}

// Cross-query cache benchmarks: the same prepared query executed over and
// over, as a warm service (cmd/toorjahd) would — with the shared access
// cache, repeat executions collapse to zero source probes, so both the
// access count and the wall clock drop.
func benchCrossQuery(b *testing.B, c *cache.Cache, cfg gen.PublicationConfig, queryIdx int, latency time.Duration) {
	sch, db := gen.Publication(1, cfg)
	reg, err := source.FromDatabase(sch, db, latency)
	if err != nil {
		b.Fatal(err)
	}
	q, err := cq.Parse(gen.PublicationQueries[queryIdx])
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.Prepare(sch, q)
	if err != nil {
		b.Fatal(err)
	}
	opts := exec.Options{Cache: c}
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := exec.FastFailingOpts(context.Background(), p.Plan, reg, opts)
		if err != nil {
			b.Fatal(err)
		}
		total += r.TotalAccesses()
	}
	b.ReportMetric(float64(total)/float64(b.N), "accesses/op")
}

func pub300() gen.PublicationConfig {
	cfg := gen.DefaultPublication()
	cfg.Tuples = 300
	return cfg
}

func BenchmarkCrossQuery_Uncached(b *testing.B) {
	benchCrossQuery(b, nil, pub300(), 1, 0)
}

func BenchmarkCrossQuery_Cached(b *testing.B) {
	benchCrossQuery(b, cache.New(cache.Options{}), pub300(), 1, 0)
}

// With simulated per-access latency the cache's wall-clock win is directly
// proportional to the probes it absorbs (small instance: sleep granularity
// makes every probe cost ~1ms of wall clock).
func BenchmarkCrossQueryLatency_Uncached(b *testing.B) {
	benchCrossQuery(b, nil, gen.SmallPublication(), 0, 100*time.Microsecond)
}

func BenchmarkCrossQueryLatency_Cached(b *testing.B) {
	benchCrossQuery(b, cache.New(cache.Options{}), gen.SmallPublication(), 0, 100*time.Microsecond)
}

// The pipelined engine over a warm shared cache: the service steady state.
func benchCrossQueryPipelined(b *testing.B, c *cache.Cache) {
	cfg := gen.SmallPublication()
	sch, db := gen.Publication(1, cfg)
	reg, err := source.FromDatabase(sch, db, 100*time.Microsecond)
	if err != nil {
		b.Fatal(err)
	}
	q, err := cq.Parse(gen.PublicationQueries[0])
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.Prepare(sch, q)
	if err != nil {
		b.Fatal(err)
	}
	opts := exec.Options{Parallelism: 4, Cache: c}
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := exec.Pipelined(context.Background(), p.Plan, reg, opts, nil)
		if err != nil {
			b.Fatal(err)
		}
		total += r.TotalAccesses()
	}
	b.ReportMetric(float64(total)/float64(b.N), "accesses/op")
}

func BenchmarkCrossQueryPipelined_Uncached(b *testing.B) {
	benchCrossQueryPipelined(b, nil)
}

func BenchmarkCrossQueryPipelined_Cached(b *testing.B) {
	benchCrossQueryPipelined(b, cache.New(cache.Options{}))
}

// Batched vs unbatched extraction under simulated per-access latency: a
// batch of N bindings pays the round-trip latency once, so the wall clock
// of a latency-bound extraction drops roughly with the mean batch size
// (accesses stay identical — the paper's cost model is untouched).
func benchBatch(b *testing.B, maxBatch int, pipelined bool) {
	cfg := gen.SmallPublication()
	sch, db := gen.Publication(1, cfg)
	reg, err := source.FromDatabase(sch, db, 2*time.Millisecond)
	if err != nil {
		b.Fatal(err)
	}
	q, err := cq.Parse(gen.PublicationQueries[0])
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.Prepare(sch, q)
	if err != nil {
		b.Fatal(err)
	}
	opts := exec.Options{MaxBatch: maxBatch}
	var accesses, batches int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var r *exec.Result
		if pipelined {
			r, err = exec.Pipelined(context.Background(), p.Plan, reg, exec.Options{Parallelism: 4, MaxBatch: maxBatch}, nil)
		} else {
			r, err = exec.FastFailingOpts(context.Background(), p.Plan, reg, opts)
		}
		if err != nil {
			b.Fatal(err)
		}
		accesses, batches = r.TotalAccesses(), r.TotalBatches()
	}
	b.ReportMetric(float64(accesses), "accesses")
	b.ReportMetric(float64(batches), "roundtrips")
}

func BenchmarkBatchPipelined_Unbatched(b *testing.B) { benchBatch(b, -1, true) }
func BenchmarkBatchPipelined_Batch16(b *testing.B)   { benchBatch(b, 16, true) }
func BenchmarkBatchFastFail_Unbatched(b *testing.B)  { benchBatch(b, -1, false) }
func BenchmarkBatchFastFail_Batch16(b *testing.B)    { benchBatch(b, 16, false) }

// UCQ benchmarks: the same union executed disjunct-by-disjunct vs
// concurrently, under per-access source latency. The three disjuncts share
// their conf/rev tail, so the parallel run overlaps most of its latency
// bill; the access count is identical either way (the paper's cost model is
// untouched by concurrency) and is the gated metric.
const benchUCQText = `
q(R) :- pub1(P, R), conf(P, C, Y), rev(R, C, Y)
q(R) :- pub2(P, R), conf(P, C, Y), rev(R, C, Y)
q(R) :- sub(P, R), conf(P, C, Y), rev(R, C, Y)
`

func benchUCQSystem(b *testing.B, opts ...SystemOption) *UnionQuery {
	b.Helper()
	sch, db := gen.Publication(1, gen.SmallPublication())
	sys := NewSystem(sch, append([]SystemOption{WithLatency(2 * time.Millisecond)}, opts...)...)
	if err := sys.BindDatabase(db); err != nil {
		b.Fatal(err)
	}
	u, err := sys.PrepareUCQ(benchUCQText)
	if err != nil {
		b.Fatal(err)
	}
	u.MaxConcurrent = len(u.Disjuncts())
	return u
}

func benchUCQ(b *testing.B, parallel bool) {
	u := benchUCQSystem(b)
	var accesses, batches int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var r *Result
		var err error
		if parallel {
			r, err = u.Execute(context.Background())
		} else {
			r, err = u.ExecuteSequential(context.Background(), Options{})
		}
		if err != nil {
			b.Fatal(err)
		}
		accesses, batches = r.TotalAccesses(), r.TotalBatches()
	}
	b.ReportMetric(float64(accesses), "accesses")
	b.ReportMetric(float64(batches), "roundtrips")
}

func BenchmarkUCQ_Sequential(b *testing.B) { benchUCQ(b, false) }
func BenchmarkUCQ_Parallel(b *testing.B)   { benchUCQ(b, true) }

// The parallel union over a cross-query cache: overlapping disjuncts share
// probes through hits and singleflight, so the whole union costs fewer
// source accesses than the sum of its disjuncts run in isolation.
func BenchmarkUCQ_ParallelCached(b *testing.B) {
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		u := benchUCQSystem(b, WithCache(cache.Options{})) // cold cache per iteration
		b.StartTimer()
		r, err := u.Execute(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		total += r.TotalAccesses()
	}
	b.ReportMetric(float64(total)/float64(b.N), "accesses/op")
}
func BenchmarkPlanning_Q3(b *testing.B) {
	sch := schema.MustParse(gen.PublicationSchemaText)
	q, err := cq.Parse(gen.PublicationQueries[2])
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := core.Prepare(sch, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanning_RandomLarge(b *testing.B) {
	cfg := gen.Fig10()
	cfg.MinRelations, cfg.MaxRelations = 10, 10
	cfg.MinAtoms, cfg.MaxAtoms = 6, 6
	g := gen.New(3, cfg)
	sch := g.Schema()
	var queries []*cq.CQ
	for i := 0; i < 5; i++ {
		if q, ok := g.Query(sch, fmt.Sprintf("q%d", i)); ok {
			queries = append(queries, q)
		}
	}
	if len(queries) == 0 {
		b.Skip("no queries generated")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Prepare(sch, queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}
