package toorjah

// Federation benchmarks: the publication workload executed over two
// in-process toorjahd-style peer nodes (httptest servers speaking the
// /probe protocol), every relation remote. The real HTTP round trip
// replaces the simulated WithLatency sleep of the local batching
// benchmarks, so batched vs unbatched shows what the batcher buys against
// an actual network stack; the access count is identical either way (the
// paper's cost model is untouched by federation) and is the gated metric.

import (
	"context"
	"net/http/httptest"
	"testing"

	"toorjah/internal/gen"
	"toorjah/internal/remote"
	"toorjah/internal/schema"
	"toorjah/internal/source"
	"toorjah/internal/storage"
)

// benchRemoteSystem shards the publication schema round-robin across two
// peer nodes and returns a system sourcing everything from them.
func benchRemoteSystem(b *testing.B, maxBatch int) *System {
	b.Helper()
	sch, db := gen.Publication(1, gen.SmallPublication())
	var shards [2][]*schema.Relation
	for i, rel := range sch.Relations() {
		shards[i%2] = append(shards[i%2], rel)
	}
	var specs []string
	for _, shard := range shards {
		ssch, err := schema.New(shard...)
		if err != nil {
			b.Fatal(err)
		}
		sdb := storage.NewDatabase()
		for _, rel := range shard {
			tab, err := sdb.Create(rel.Name, rel.Arity())
			if err != nil {
				b.Fatal(err)
			}
			if t := db.Table(rel.Name); t != nil {
				tab.InsertAll(t.Rows())
			}
		}
		reg, err := source.FromDatabase(ssch, sdb, 0)
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(remote.PeerMux(reg))
		b.Cleanup(ts.Close)
		specs = append(specs, ts.URL)
	}
	opts := []SystemOption{WithMaxBatch(maxBatch)}
	for _, spec := range specs {
		opts = append(opts, WithRemote(spec))
	}
	sys := NewSystem(sch.Clone(), opts...)
	if err := sys.AttachRemotes(context.Background()); err != nil {
		b.Fatal(err)
	}
	return sys
}

// benchRemote runs the Fig. 7 query fully federated with the fast-failing
// executor.
func benchRemote(b *testing.B, maxBatch int) {
	sys := benchRemoteSystem(b, maxBatch)
	q, err := sys.Prepare(gen.PublicationQueries[0])
	if err != nil {
		b.Fatal(err)
	}
	var accesses, batches int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := q.Execute(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		accesses, batches = r.TotalAccesses(), r.TotalBatches()
	}
	b.ReportMetric(float64(accesses), "accesses")
	b.ReportMetric(float64(batches), "roundtrips")
}

func BenchmarkRemoteFastFail_Unbatched(b *testing.B) { benchRemote(b, -1) }
func BenchmarkRemoteFastFail_Batch16(b *testing.B)   { benchRemote(b, 16) }
