package toorjah

import (
	"context"
	"sort"
	"strings"
	"testing"
	"time"

	"toorjah/internal/cq"
	"toorjah/internal/gen"
	"toorjah/internal/source"
	"toorjah/internal/storage"
)

// ucqPubSystem builds a system over a small publication instance, with every
// table source wrapped in a Counter beneath whatever the System layers on
// top (cache, latency), so the counters observe exactly the probes that
// reach the tables.
func ucqPubSystem(t *testing.T, seed int64, opts ...SystemOption) (*System, map[string]*source.Counter) {
	t.Helper()
	sch, db := gen.Publication(seed, gen.SmallPublication())
	sys := NewSystem(sch, opts...)
	counters := make(map[string]*source.Counter)
	for _, rel := range sch.Relations() {
		tab := db.Table(rel.Name)
		if tab == nil {
			tab = storage.NewTable(rel.Name, rel.Arity())
		}
		src, err := source.NewTableSource(rel, tab)
		if err != nil {
			t.Fatal(err)
		}
		if sys.Latency > 0 {
			src = src.WithLatency(sys.Latency)
		}
		ctr := source.NewCounter(src, false)
		counters[rel.Name] = ctr
		sys.Bind(ctr)
	}
	return sys, counters
}

// ucqPubText is a union of three overlapping publication disjuncts: all
// three share the conf/rev tail, so their access sets overlap heavily and a
// shared cache has real duplicate probes to collapse.
const ucqPubText = `
q(R) :- pub1(P, R), conf(P, C, Y), rev(R, C, Y)
q(R) :- pub2(P, R), conf(P, C, Y), rev(R, C, Y)
q(R) :- sub(P, R), conf(P, C, Y), rev(R, C, Y)
`

func underlying(counters map[string]*source.Counter) int {
	n := 0
	for _, c := range counters {
		n += c.Stats().Accesses
	}
	return n
}

// TestUCQBatchesPropagated is the regression test for the old hand-rolled
// stats merge that summed only Accesses and Tuples: a batched UCQ run must
// report its source round trips, with fewer round trips than accesses.
func TestUCQBatchesPropagated(t *testing.T) {
	for _, mode := range []string{"parallel", "sequential"} {
		sys, _ := ucqPubSystem(t, 1)
		u, err := sys.PrepareUCQ(ucqPubText)
		if err != nil {
			t.Fatal(err)
		}
		var res *Result
		if mode == "parallel" {
			res, err = u.Execute(context.Background()) // default MaxBatch = 16
		} else {
			res, err = u.ExecuteSequential(context.Background(), Options{})
		}
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalAccesses() == 0 {
			t.Fatalf("%s: no accesses recorded", mode)
		}
		if got := res.TotalBatches(); got == 0 {
			t.Errorf("%s: TotalBatches = 0 for %d accesses (Batches dropped in the merge)",
				mode, res.TotalAccesses())
		} else if got > res.TotalAccesses() {
			t.Errorf("%s: %d round trips for %d accesses", mode, got, res.TotalAccesses())
		} else if got == res.TotalAccesses() {
			t.Errorf("%s: batching bought nothing (%d round trips = accesses)", mode, got)
		}
	}
}

// TestUCQParallelCachedNoMoreAccesses is the concurrency acceptance
// property: parallel UCQ execution over a shared cross-query cache performs
// no more total source accesses than the sequential loop on the same
// instance, and the cache's singleflight guarantees no distinct binding is
// ever probed twice even with every disjunct in flight at once.
func TestUCQParallelCachedNoMoreAccesses(t *testing.T) {
	// MaxBatch -1: the unbatched path is the one with singleflight
	// collapsing (a batch is itself the amortisation of its round trip).
	opts := Options{MaxBatch: -1}

	seqSys, seqCounters := ucqPubSystem(t, 7, WithCache(CacheOptions{}))
	seqU, err := seqSys.PrepareUCQ(ucqPubText)
	if err != nil {
		t.Fatal(err)
	}
	seqRes, err := seqU.ExecuteSequential(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	seqProbes := underlying(seqCounters)
	if seqProbes == 0 {
		t.Fatal("sequential run probed nothing")
	}

	parSys, parCounters := ucqPubSystem(t, 7, WithCache(CacheOptions{}))
	parU, err := parSys.PrepareUCQ(ucqPubText)
	if err != nil {
		t.Fatal(err)
	}
	parU.MaxConcurrent = len(parU.Disjuncts())
	parRes, err := parU.ExecuteOpts(opts)
	if err != nil {
		t.Fatal(err)
	}
	parProbes := underlying(parCounters)

	if parProbes > seqProbes {
		t.Errorf("parallel cached run probed %d times, sequential needs %d", parProbes, seqProbes)
	}
	for rel, ctr := range parCounters {
		if st := ctr.Stats(); st.Accesses != ctr.DistinctAccesses() {
			t.Errorf("%s: %d probes for %d distinct bindings (singleflight failed to collapse)",
				rel, st.Accesses, ctr.DistinctAccesses())
		}
	}
	if got, want := strings.Join(parRes.SortedAnswers(), ";"), strings.Join(seqRes.SortedAnswers(), ";"); got != want {
		t.Errorf("parallel answers = %q, sequential = %q", got, want)
	}
	// The overlapping disjuncts really did share work: the cache absorbed
	// duplicate probes (hits or collapsed flights), so the merged Result
	// stats — only probes that reached the sources — match the counters.
	if tot := parSys.AccessCache().Totals(); tot.Hits+tot.Collapsed == 0 {
		t.Errorf("cache absorbed nothing: %+v", tot)
	}
	if parRes.TotalAccesses() != parProbes {
		t.Errorf("merged stats report %d accesses, counters saw %d", parRes.TotalAccesses(), parProbes)
	}
}

// TestUCQPropertyUnionOfDisjuncts: on randomized schemas, queries and
// instances, every UCQ entry point — concurrent fast-failing, sequential,
// naive, streaming; with and without a cross-query cache — returns exactly
// the union of the per-disjunct answer sets.
func TestUCQPropertyUnionOfDisjuncts(t *testing.T) {
	found := 0
	for seed := int64(1); seed <= 40 && found < 4; seed++ {
		g := gen.New(seed, gen.Fig10())
		sch := g.Schema()
		// Collect disjuncts sharing a head arity (a valid UCQ needs it).
		byArity := make(map[int][]*cq.CQ)
		var disjuncts []*cq.CQ
		for i := 0; i < 12 && disjuncts == nil; i++ {
			q, ok := g.Query(sch, "q")
			if !ok {
				break
			}
			byArity[q.Arity()] = append(byArity[q.Arity()], q)
			if len(byArity[q.Arity()]) == 3 {
				disjuncts = byArity[q.Arity()]
			}
		}
		if disjuncts == nil {
			continue
		}
		found++
		db := g.Instance(sch)
		ucq := &UCQ{Name: "q", Disjuncts: disjuncts}

		newSys := func(opts ...SystemOption) *System {
			sys := NewSystem(sch, opts...)
			if err := sys.BindDatabase(db); err != nil {
				t.Fatal(err)
			}
			return sys
		}

		// Expected: the union of the per-disjunct answer sets.
		expected := make(map[string]bool)
		refSys := newSys()
		for _, d := range disjuncts {
			q, err := refSys.PrepareCQ(d)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			r, err := q.Execute(context.Background())
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			for k := range r.AnswerSet() {
				expected[k] = true
			}
		}
		wantKeys := make([]string, 0, len(expected))
		for k := range expected {
			wantKeys = append(wantKeys, k)
		}
		sort.Strings(wantKeys)
		want := strings.Join(wantKeys, "|")

		check := func(label string, res *Result, err error) {
			t.Helper()
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, label, err)
			}
			gotKeys := make([]string, 0, res.Answers.Len())
			for k := range res.AnswerSet() {
				gotKeys = append(gotKeys, k)
			}
			sort.Strings(gotKeys)
			if got := strings.Join(gotKeys, "|"); got != want {
				t.Errorf("seed %d %s: answers = %q, want %q", seed, label, got, want)
			}
		}

		for _, cached := range []bool{false, true} {
			var opts []SystemOption
			label := "uncached"
			if cached {
				opts = []SystemOption{WithCache(CacheOptions{})}
				label = "cached"
			}
			sys := newSys(opts...)
			u, err := sys.PrepareUCQFrom(ucq)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			u.MaxConcurrent = len(u.Disjuncts())

			res, err := u.Execute(context.Background())
			check(label+"/parallel", res, err)
			res, err = u.ExecuteSequential(context.Background(), Options{})
			check(label+"/sequential", res, err)
			res, err = u.ExecuteNaive()
			check(label+"/naive", res, err)

			var streamed int
			res, err = u.Stream(PipeOptions{}, func(Tuple) { streamed++ })
			check(label+"/stream", res, err)
			if err == nil && streamed != res.Answers.Len() {
				t.Errorf("seed %d %s/stream: %d streamed, %d in result (dedup broken)",
					seed, label, streamed, res.Answers.Len())
			}
			if cached {
				// A warm repeat is served entirely from the cache.
				warm, err := u.Execute(context.Background())
				check("warm/parallel", warm, err)
				if err == nil && warm.TotalAccesses() != 0 {
					t.Errorf("seed %d warm run made %d probes, want 0", seed, warm.TotalAccesses())
				}
			}
		}
	}
	if found == 0 {
		t.Fatal("no seed produced a UCQ workload; loosen the search")
	}
}

// TestUCQCancellation: a cancelled context truncates the union into a sound
// subset of the obtainable answers, for both the concurrent executor and
// the stream.
func TestUCQCancellation(t *testing.T) {
	fullSys, _ := ucqPubSystem(t, 3)
	fullU, err := fullSys.PrepareUCQ(ucqPubText)
	if err != nil {
		t.Fatal(err)
	}
	full, err := fullU.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	obtainable := full.AnswerSet()

	// Pre-cancelled: nothing runs, nothing is probed, the result is a
	// truncated empty union.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := fullU.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || res.Answers.Len() != 0 || res.TotalAccesses() != 0 {
		t.Errorf("pre-cancelled: truncated=%v answers=%d accesses=%d",
			res.Truncated, res.Answers.Len(), res.TotalAccesses())
	}

	// Mid-run: per-access latency makes completion impossible inside the
	// deadline, so the run must stop early with a sound subset. Unbatched,
	// every probe pays the latency, and the full workload needs hundreds.
	for _, mode := range []string{"execute", "stream"} {
		sys, _ := ucqPubSystem(t, 3, WithLatency(time.Millisecond))
		u, err := sys.PrepareUCQ(ucqPubText)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		var r *Result
		if mode == "execute" {
			r, err = u.Execute(ctx, WithExecOptions(Options{MaxBatch: -1}))
		} else {
			r, err = u.Stream(PipeOptions{Ctx: ctx, Options: Options{MaxBatch: -1}}, nil)
		}
		cancel()
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if !r.Truncated {
			t.Errorf("%s: cancelled mid-run but not Truncated", mode)
		}
		for k := range r.AnswerSet() {
			if !obtainable[k] {
				t.Errorf("%s: truncated run invented answer %q", mode, k)
			}
		}
	}
}

// TestUCQStreamDedupAndLimit: overlapping disjuncts stream each distinct
// answer once; a limit caps the stream and marks it truncated when answers
// remained.
func TestUCQStreamDedupAndLimit(t *testing.T) {
	sch, err := ParseSchema(`
pub1^io(Paper, Person)
pub2^oo(Paper, Person)
conf^ooo(Paper, ConfName, Year)
`)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(sch)
	must(t, sys.BindRows("pub1", Row{"p1", "alice"}, Row{"p2", "bob"}))
	must(t, sys.BindRows("pub2", Row{"p1", "alice"}, Row{"p3", "carol"}))
	must(t, sys.BindRows("conf", Row{"p1", "icde", "2008"}, Row{"p2", "vldb", "2007"}, Row{"p3", "icde", "2008"}))
	u, err := sys.PrepareUCQ(`
q(X) :- pub1(P, X), conf(P, icde, Y)
q(X) :- pub2(P, X), conf(P, icde, Y)
`)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []string
	res, err := u.Stream(PipeOptions{}, func(t Tuple) { streamed = append(streamed, t.Strings()[0]) })
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(streamed)
	if got := strings.Join(streamed, ";"); got != "alice;carol" {
		t.Errorf("streamed = %s, want alice;carol (deduplicated)", got)
	}
	if res.Truncated {
		t.Error("complete stream marked truncated")
	}
	if res.TimeToFirst == 0 || res.TimeToFirst > res.Elapsed {
		t.Errorf("TimeToFirst = %v, Elapsed = %v", res.TimeToFirst, res.Elapsed)
	}

	limited, err := u.Stream(PipeOptions{Limit: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if limited.Answers.Len() != 1 {
		t.Errorf("limit 1: %d answers", limited.Answers.Len())
	}
	if !limited.Truncated {
		t.Error("limit 1 of 2 obtainable answers: want Truncated")
	}
}
