package toorjah

// Federation: a System can source relations from remote toorjahd peers
// instead of (or mixed with) local tables. A peer serves its relations over
// the probe protocol of internal/remote (POST /probe, batched bindings in,
// NDJSON rows out); this node attaches them as ordinary sources, so every
// layer above — the executors, the batcher, the cross-query cache, the
// parallel union runner — composes unchanged, now amortising real network
// round trips instead of simulated latency.

import (
	"context"
	"fmt"
	"time"

	"toorjah/internal/remote"
	"toorjah/internal/source"
)

// Re-exported remote types, so applications configure federation without
// importing the internal package.
type (
	// RemoteOptions tunes the remote-source clients: per-attempt timeout,
	// bounded retries with backoff and jitter, per-relation circuit
	// breaker, response-size limit, connection pool.
	RemoteOptions = remote.Options
	// RemotePeer is an attached peer: one probe client with per-relation
	// breakers and telemetry, shared by every relation sourced from it.
	RemotePeer = remote.Client
	// RemoteTelemetry is the accumulated probe accounting of one relation
	// against one peer.
	RemoteTelemetry = remote.Telemetry
)

// WithRemoteOptions sets the client tuning used by every subsequently
// attached peer (WithRemote / AttachRemote); the zero value is the package
// defaults.
func WithRemoteOptions(o RemoteOptions) SystemOption {
	return func(s *System) { s.remoteOpts = o }
}

// WithRemote attaches a federation peer by spec — "http://host:8344=R1,R2",
// or just the address to attach every peer relation the schema declares
// that this node does not already hold data for. Construction stays
// network-free: the attach (schema discovery and validation against the
// local declarations) happens on the first Prepare, or eagerly via
// AttachRemotes; a failed attach surfaces there and is retried by later
// calls, with a short cooldown between attempts so a dead peer costs one
// dial per cooldown window, not one per query.
func WithRemote(spec string) SystemOption {
	return func(s *System) {
		s.pendingRemote = append(s.pendingRemote, pendingAttach{spec: spec})
	}
}

// pendingAttach is a WithRemote spec not yet attached, with the failure
// bookkeeping behind the retry cooldown.
type pendingAttach struct {
	spec    string
	lastTry time.Time
	lastErr error
}

// attachRetryCooldown spaces out re-attach attempts of a failing pending
// peer: within the window, AttachRemotes returns the recorded error
// without touching the network (the attach runs under remoteMu, so every
// concurrent Prepare would otherwise serialize behind a full dial timeout).
const attachRetryCooldown = 5 * time.Second

// AttachRemote attaches a federation peer now: it parses the spec, dials
// the peer, discovers its schema, verifies every attached relation is
// declared identically on both sides, and binds a remote source per
// relation (dropping any cached accesses of those relations, like any
// rebind).
func (s *System) AttachRemote(ctx context.Context, spec string) error {
	s.remoteMu.Lock()
	defer s.remoteMu.Unlock()
	return s.attachRemoteLocked(ctx, spec)
}

// AttachRemotes applies the pending WithRemote specs. It is idempotent and
// safe to call concurrently (Prepare calls it); a spec leaves the pending
// list only when its attach succeeds, so a peer that was down at first use
// is retried by a later Prepare — after attachRetryCooldown, the recorded
// error being returned in between.
func (s *System) AttachRemotes(ctx context.Context) error {
	s.remoteMu.Lock()
	defer s.remoteMu.Unlock()
	for len(s.pendingRemote) > 0 {
		p := &s.pendingRemote[0]
		if p.lastErr != nil && time.Since(p.lastTry) < attachRetryCooldown {
			return p.lastErr
		}
		if err := s.attachRemoteLocked(ctx, p.spec); err != nil {
			p.lastTry, p.lastErr = time.Now(), err
			return err
		}
		s.pendingRemote = s.pendingRemote[1:]
	}
	return nil
}

// attachRemoteLocked does the attach; callers hold s.remoteMu. The
// context bounds the schema discovery round trip.
func (s *System) attachRemoteLocked(ctx context.Context, spec string) error {
	as, err := remote.ParseAttachSpec(spec)
	if err != nil {
		return fmt.Errorf("toorjah: %w", err)
	}
	c := remote.Dial(as.Base, s.remoteOpts)
	peer, err := c.FetchSchema(ctx)
	if err != nil {
		c.Close()
		return fmt.Errorf("toorjah: %w", err)
	}
	relations := as.Relations
	if relations == nil {
		// Bare attach: source from the peer what this node does not hold
		// itself. The peer's /schema lists its *declared* relations —
		// including ones it only serves as empty placeholders — so without
		// the locallyOwned filter a bare attach would shadow this node's
		// own data-bearing tables behind remote (possibly empty) sources.
		// An explicit =R1,R2 list always wins, shadowing included.
		for _, rel := range peer.Relations() {
			if s.sch.Has(rel.Name) && !s.locallyOwned(rel.Name) {
				relations = append(relations, rel.Name)
			}
		}
		if len(relations) == 0 {
			c.Close()
			return fmt.Errorf("toorjah: remote %s: no peer relation to attach (every shared relation is already locally bound)", as.Base)
		}
	}
	srcs, err := remote.AttachDiscovered(c, s.sch, peer, relations)
	if err != nil {
		c.Close()
		return fmt.Errorf("toorjah: %w", err)
	}
	for _, src := range srcs {
		s.Bind(src)
	}
	s.peers = append(s.peers, c)
	return nil
}

// locallyOwned reports whether a relation's current binding is worth
// keeping in front of a bare remote attach: anything except no binding at
// all, an empty local table (the placeholder a missing CSV leaves behind),
// or a source already attached from another peer. Custom wrappers are
// opaque, so they count as owned.
func (s *System) locallyOwned(name string) bool {
	switch src := s.reg.Source(name).(type) {
	case nil:
		return false
	case *source.TableSource:
		return src.Table().Snapshot().Len() > 0
	case *remote.Source:
		return false
	default:
		return true
	}
}

// RemotePeers returns the attached federation peers, in attach order; use
// them for telemetry (RemotePeer.Telemetry) and reachability
// (RemotePeer.Healthy). Peers whose WithRemote attach has not run yet are
// absent.
func (s *System) RemotePeers() []*RemotePeer {
	s.remoteMu.Lock()
	defer s.remoteMu.Unlock()
	out := make([]*RemotePeer, len(s.peers))
	copy(out, s.peers)
	return out
}

// ProbeRegistry returns the system's sources as served to federated peers:
// behind the cross-query cache when one is configured, so a probe repeated
// by (or across) peers costs no local access. toorjahd mounts its /probe
// endpoint over this view. The view snapshots the current bindings — take
// it after every relation is bound, and retake it after a rebind.
func (s *System) ProbeRegistry() *source.Registry {
	if s.cache != nil {
		return s.cache.WrapRegistry(s.reg)
	}
	return s.reg
}
