package toorjah_test

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"toorjah"
	"toorjah/internal/schema"
	"toorjah/internal/storage"
)

// TestLiveMutationConsistency is the live-data acceptance property: a writer
// interleaves Insert/Delete batches with concurrent CQ and UCQ executions
// across all three executors, with and without a cross-query cache, batched
// and unbatched — over one shared pair of live tables — and every query's
// answer set must equal the evaluation over some single published epoch of
// each relation (no torn reads), with post-ingest queries seeing exactly the
// final rows.
//
// The query is a chain within the mutated relation, q(Y) :- r(k,X), r(X,Y),
// so that a mixed-epoch read is detectable: the writer alternates disjoint
// chains {(k,v_g),(v_g,w_g)}, and an execution reading the first hop at one
// epoch and the second at another dead-ends into an answer set no single
// epoch produces (typically empty — and no recorded epoch is empty).
func TestLiveMutationConsistency(t *testing.T) {
	readers, queriesEach := 6, 50
	if testing.Short() {
		readers, queriesEach = 4, 15
	}

	sch := schema.MustParse(`
		r^io(Node, Node)
		d^io(K, V)`)
	tabR := storage.NewTable("r", 2)
	tabD := storage.NewTable("d", 2)

	// Four systems over the same live tables: the writer mutates through the
	// first; the cached systems other than the writer's are never explicitly
	// invalidated, so their freshness rests entirely on epoch-keyed entries.
	newSys := func(opts ...toorjah.SystemOption) *toorjah.System {
		sys := toorjah.NewSystem(sch, opts...)
		if err := sys.BindTable("r", tabR); err != nil {
			t.Fatal(err)
		}
		if err := sys.BindTable("d", tabD); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	// The simulated per-access latency widens the window between a chain
	// query's first and second hop, so an unpinned execution would actually
	// straddle mutations (the writer cycles generations the whole time the
	// readers run).
	lat := toorjah.WithLatency(200 * time.Microsecond)
	systems := []*toorjah.System{
		newSys(lat, toorjah.WithCache(toorjah.CacheOptions{})),
		newSys(lat, toorjah.WithCache(toorjah.CacheOptions{}), toorjah.WithMaxBatch(4)),
		newSys(lat),
		newSys(lat, toorjah.WithMaxBatch(-1)),
	}
	writerSys := systems[0]

	const cqText = "q(Y) :- r(k, X), r(X, Y)"
	const ucqText = cqText + "\nq(V) :- d(k2, V)"

	// Generation g of the data; canonR/canonD build the canonical answer
	// strings the histories record.
	rRows := func(g int) []toorjah.Row {
		return []toorjah.Row{{"k", fmt.Sprintf("v%d", g)}, {fmt.Sprintf("v%d", g), fmt.Sprintf("w%d", g)}}
	}
	dRows := func(g int) []toorjah.Row {
		return []toorjah.Row{{"k2", fmt.Sprintf("u%d", g)}}
	}
	canon := func(vals ...string) string { return strings.Join(vals, "|") }

	// histR / histD are the canonical answer sets of every epoch ever
	// published, per relation; recording happens under histMu in the same
	// critical section as the mutation, so any epoch a reader can have
	// pinned is recorded by the time the reader acquires the mutex to check.
	var histMu sync.Mutex
	histR := map[string]bool{}
	histD := map[string]bool{}

	histMu.Lock()
	if _, err := writerSys.Insert("r", rRows(0)...); err != nil {
		t.Fatal(err)
	}
	histR[canon("w0")] = true
	if _, err := writerSys.Insert("d", dRows(0)...); err != nil {
		t.Fatal(err)
	}
	histD[canon("u0")] = true
	histMu.Unlock()

	// Prepare once, before any further mutation: live data must not require
	// re-preparing (plans depend only on the schema).
	type prepared struct {
		cq  *toorjah.Query
		ucq *toorjah.UnionQuery
	}
	plans := make([]prepared, len(systems))
	for i, sys := range systems {
		q, err := sys.Prepare(cqText)
		if err != nil {
			t.Fatal(err)
		}
		u, err := sys.PrepareUCQ(ucqText)
		if err != nil {
			t.Fatal(err)
		}
		plans[i] = prepared{cq: q, ucq: u}
	}

	var readersWG, writerWG sync.WaitGroup
	readersDone := make(chan struct{})
	var finalGen int

	// The writer cycles generations for as long as the readers run: each
	// step inserts generation g (publishing the union state {w_{g-1},w_g})
	// and then deletes generation g-1 (publishing the clean state {w_g});
	// same for d.
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		g := 0
		defer func() { finalGen = g }()
		for {
			select {
			case <-readersDone:
				return
			default:
			}
			g++
			histMu.Lock()
			if _, err := writerSys.Insert("r", rRows(g)...); err != nil {
				t.Error(err)
			}
			histR[canon(fmt.Sprintf("w%d", g-1), fmt.Sprintf("w%d", g))] = true
			histMu.Unlock()

			histMu.Lock()
			if _, err := writerSys.Delete("r", rRows(g-1)...); err != nil {
				t.Error(err)
			}
			histR[canon(fmt.Sprintf("w%d", g))] = true
			histMu.Unlock()

			histMu.Lock()
			if _, err := writerSys.Insert("d", dRows(g)...); err != nil {
				t.Error(err)
			}
			histD[canon(fmt.Sprintf("u%d", g-1), fmt.Sprintf("u%d", g))] = true
			histMu.Unlock()

			histMu.Lock()
			if _, err := writerSys.Delete("d", dRows(g-1)...); err != nil {
				t.Error(err)
			}
			histD[canon(fmt.Sprintf("u%d", g))] = true
			histMu.Unlock()
		}
	}()

	// splitAnswers partitions a result's single-column answers into the
	// r-derived (w*) and d-derived (u*) parts.
	splitAnswers := func(res *toorjah.Result) (rPart, dPart string, bad []string) {
		var ws, us []string
		for _, a := range res.SortedAnswers() {
			switch {
			case strings.HasPrefix(a, "w"):
				ws = append(ws, a)
			case strings.HasPrefix(a, "u"):
				us = append(us, a)
			default:
				bad = append(bad, a)
			}
		}
		return strings.Join(ws, "|"), strings.Join(us, "|"), bad
	}

	check := func(kind string, res *toorjah.Result, err error, wantD bool) {
		if err != nil {
			t.Errorf("%s: %v", kind, err)
			return
		}
		if res.Truncated {
			t.Errorf("%s: unexpected truncation", kind)
			return
		}
		rPart, dPart, bad := splitAnswers(res)
		if len(bad) > 0 {
			t.Errorf("%s: unclassifiable answers %v", kind, bad)
			return
		}
		histMu.Lock()
		okR := histR[rPart]
		okD := histD[dPart]
		histMu.Unlock()
		if !okR {
			t.Errorf("%s: torn read — r answers %q match no published epoch", kind, rPart)
		}
		if wantD && !okD {
			t.Errorf("%s: torn read — d answers %q match no published epoch", kind, dPart)
		}
		if !wantD && dPart != "" {
			t.Errorf("%s: CQ produced d answers %q", kind, dPart)
		}
	}

	for i := 0; i < readers; i++ {
		readersWG.Add(1)
		go func(seed int64) {
			defer readersWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for n := 0; n < queriesEach; n++ {
				p := plans[rng.Intn(len(plans))]
				switch rng.Intn(6) {
				case 0:
					res, err := p.cq.Execute(context.Background())
					check("fastfail CQ", res, err, false)
				case 1:
					res, err := p.cq.ExecuteNaive()
					check("naive CQ", res, err, false)
				case 2:
					res, err := p.cq.Stream(toorjah.PipeOptions{}, nil)
					check("pipelined CQ", res, err, false)
				case 3:
					res, err := p.ucq.Execute(context.Background())
					check("parallel UCQ", res, err, true)
				case 4:
					res, err := p.ucq.Stream(toorjah.PipeOptions{}, func(toorjah.Tuple) {})
					check("streamed UCQ", res, err, true)
				case 5:
					res, err := p.ucq.ExecuteSequential(context.Background(), toorjah.Options{})
					check("sequential UCQ", res, err, true)
				}
			}
		}(int64(i) + 1)
	}
	readersWG.Wait()
	close(readersDone)
	writerWG.Wait()

	// Post-ingest: with the writer quiet, every system and executor must see
	// exactly the final generation — including the cached systems that were
	// never explicitly invalidated.
	wantR := canon(fmt.Sprintf("w%d", finalGen))
	wantU := fmt.Sprintf("u%d", finalGen)
	for i, p := range plans {
		for kind, run := range map[string]func() (*toorjah.Result, error){
			"fastfail": func() (*toorjah.Result, error) {
				return p.cq.Execute(context.Background())
			},
			"naive": p.cq.ExecuteNaive,
			"pipelined": func() (*toorjah.Result, error) {
				return p.cq.Stream(toorjah.PipeOptions{}, nil)
			},
			"ucq": func() (*toorjah.Result, error) {
				return p.ucq.Execute(context.Background())
			},
		} {
			res, err := run()
			if err != nil {
				t.Fatalf("system %d %s final: %v", i, kind, err)
			}
			rPart, dPart, _ := splitAnswers(res)
			if rPart != wantR {
				t.Errorf("system %d %s final: r answers %q, want %q", i, kind, rPart, wantR)
			}
			if kind == "ucq" && dPart != wantU {
				t.Errorf("system %d %s final: d answers %q, want %q", i, kind, dPart, wantU)
			}
		}
	}
	if e := writerSys.RelationEpoch("r"); e < uint64(2*finalGen) {
		t.Errorf("r epoch = %d, want >= %d", e, 2*finalGen)
	}
	info := writerSys.DataInfo()["r"]
	if info.Rows != 2 || !info.Local || info.ModifiedAt.IsZero() {
		t.Errorf("DataInfo(r) = %+v", info)
	}
}
